//! The unified [`LocalAlgorithm`] interface: graph + identifiers + seed in,
//! per-node labeling + [`RoundStats`] out.
//!
//! Historically each algorithm in this crate reported costs its own way —
//! some ran as genuine engine protocols (Elkin–Neiman), others were
//! centralized reference implementations that charged rounds analytically
//! (Luby MIS, trial coloring), so round counts, message counts and random
//! bits were not comparable across algorithms. Implementations of
//! [`LocalAlgorithm`] run as protocols on the
//! [`locality_sim::executor::Executor`], so every algorithm is metered by
//! the *same* engine code: rounds are engine rounds, messages are occupied
//! directed-edge slots, CONGEST violations are counted per directed message,
//! and random bits are whatever the per-node sources actually drew.
//!
//! # Example
//! ```
//! use locality_core::algorithm::LocalAlgorithm;
//! use locality_core::mis::{verify_mis, LubyMis};
//! use locality_graph::prelude::*;
//!
//! let g = Graph::grid(8, 8);
//! let ids = IdAssignment::sequential(g.node_count());
//! let run = LubyMis::default().run(&g, &ids, 42);
//! verify_mis(&g, &run.labels).unwrap();
//! assert!(run.stats.meter.rounds > 0);
//! assert!(run.stats.meter.random_bits > 0);
//! ```

use locality_graph::ids::IdAssignment;
use locality_graph::Graph;
use locality_rand::prng::{Prng, SplitMix64};
use locality_sim::cost::CostMeter;
use locality_sim::engine::Mode;
use locality_sim::executor::{BatchProtocol, Executor};
use std::fmt;

/// Uniform cost accounting for one [`LocalAlgorithm`] execution.
///
/// `#[non_exhaustive]`: future engines may add cost dimensions; construct
/// through the ports, match with a `..` rest pattern.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// The algorithm's name (as reported by [`LocalAlgorithm::name`]).
    pub algorithm: &'static str,
    /// Number of nodes of the input graph.
    pub n: usize,
    /// Communication regime the run was metered under.
    pub mode: Mode,
    /// Engine-metered costs: rounds, messages, bits, max message size,
    /// CONGEST violations (per directed message) and random bits drawn.
    pub meter: CostMeter,
}

impl fmt::Display for RoundStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (n={}): {}", self.algorithm, self.n, self.meter)
    }
}

/// Result of a [`LocalAlgorithm`] execution.
#[derive(Debug, Clone)]
pub struct AlgorithmRun<L> {
    /// Per-node labels, indexed by node.
    pub labels: Vec<L>,
    /// Uniform cost accounting.
    pub stats: RoundStats,
}

/// A distributed algorithm with the paper's standard signature: a graph with
/// unique identifiers and a randomness seed in, a per-node labeling and
/// uniform [`RoundStats`] out.
///
/// Implementations execute as message-passing protocols on the simulation
/// engine (or compose such executions), so their costs are measured, not
/// asserted. Runs are deterministic functions of `(g, ids, seed)`.
pub trait LocalAlgorithm {
    /// The per-node output label.
    type Label;

    /// A short stable name for tables and logs.
    fn name(&self) -> &'static str;

    /// Execute on `g` with identifier assignment `ids` and randomness
    /// derived (only) from `seed`.
    ///
    /// # Panics
    /// Implementations panic if `ids` does not match `g` or if the run
    /// exceeds its (generous, w.h.p.-safe) internal round budget.
    fn run(&self, g: &Graph, ids: &IdAssignment, seed: u64) -> AlgorithmRun<Self::Label>;
}

/// Derive a statistically independent per-node seed from a run seed and the
/// node's identifier (shared by the protocol ports so runs are reproducible
/// node-by-node regardless of execution order).
pub fn node_seed(seed: u64, id: u64) -> u64 {
    SplitMix64::new(seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15)).next_u64()
}

/// The shared wrapper shape of the protocol-backed [`LocalAlgorithm`] ports:
/// run `protocols` on a standard-budget CONGEST [`Executor`] and assemble
/// the uniform [`AlgorithmRun`]. `max_rounds == 0` selects a generous
/// w.h.p.-safe default of `64·(⌈log2 n⌉ + 1)` engine rounds; `threads`
/// chunks node steps (`1` = sequential — any value is bit-identical).
///
/// # Panics
/// Panics if the protocol count differs from the node count or the round
/// budget is exceeded (the port's "halts w.h.p." contract was violated).
pub fn run_congest_protocol<P>(
    name: &'static str,
    g: &Graph,
    ids: &IdAssignment,
    threads: usize,
    max_rounds: u32,
    protocols: impl IntoIterator<Item = P>,
    random_bits: impl Fn(&P) -> u64,
) -> AlgorithmRun<P::Output>
where
    P: BatchProtocol + Send + Clone,
    P::Message: Send + Sync,
    P::Output: Send + PartialEq + fmt::Debug,
{
    let max_rounds = if max_rounds == 0 {
        64 * (g.log2_n() + 1)
    } else {
        max_rounds
    };
    let mut exec = Executor::congest(g, ids);
    let run = exec
        .run_parallel_metered(protocols, max_rounds, threads, random_bits)
        .unwrap_or_else(|e| panic!("{name} must halt w.h.p. within its round budget: {e}")); // audit: allow(panic) -- w.h.p. halting budget: exceeding it disproves the bound under test
    AlgorithmRun {
        labels: run.outputs,
        stats: RoundStats {
            algorithm: name,
            n: g.node_count(),
            mode: exec.mode(),
            meter: run.meter,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{verify_coloring, TrialColoring};
    use crate::decomposition::elkin_neiman::ElkinNeimanDecomposition;
    use crate::mis::{verify_mis, LubyMis};

    #[test]
    fn round_stats_display_names_the_algorithm() {
        let s = RoundStats {
            algorithm: "x",
            n: 3,
            mode: Mode::Local,
            meter: CostMeter::rounds_only(2),
        };
        assert!(s.to_string().contains("x (n=3)"));
        assert!(s.to_string().contains("rounds=2"));
    }

    #[test]
    fn node_seed_differs_by_node_and_seed() {
        assert_ne!(node_seed(1, 1), node_seed(1, 2));
        assert_ne!(node_seed(1, 1), node_seed(2, 1));
        assert_eq!(node_seed(7, 9), node_seed(7, 9));
    }

    /// The acceptance shape: MIS, coloring and a decomposition all running
    /// through the same trait with engine-metered stats.
    #[test]
    fn three_algorithms_through_one_interface() {
        let g = Graph::grid(6, 6);
        let ids = IdAssignment::sequential(g.node_count());

        let mis = LubyMis::default().run(&g, &ids, 5);
        verify_mis(&g, &mis.labels).unwrap();

        let col = TrialColoring::default().run(&g, &ids, 5);
        verify_coloring(&g, &col.labels, g.max_degree() + 1).unwrap();

        let en = ElkinNeimanDecomposition::default().run(&g, &ids, 5);
        assert_eq!(en.labels.len(), g.node_count());

        for stats in [&mis.stats, &col.stats, &en.stats] {
            assert!(stats.meter.rounds > 0, "{stats}");
            assert!(stats.meter.messages > 0, "{stats}");
            assert!(stats.meter.random_bits > 0, "{stats}");
            assert!(
                matches!(stats.mode, Mode::Congest { .. }),
                "all three ports are CONGEST protocols"
            );
        }
    }
}
