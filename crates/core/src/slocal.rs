//! The SLOCAL → LOCAL reduction of [GKM17] (the machinery behind the
//! paper's completeness claims).
//!
//! [GKM17] proved: given a network decomposition of the power graph
//! `G^{2r+1}` with few colors and small diameter, any SLOCAL algorithm of
//! locality `r` runs in the LOCAL model — process cluster colors in order;
//! same-color clusters of `G^{2r+1}` are pairwise at distance `> 2r+1` in
//! `G`, so their radius-`r` read balls are disjoint and they can execute
//! their sequential steps in parallel, each cluster working through its own
//! members sequentially after gathering its neighborhood.
//!
//! Combined with [`crate::decomposition`] this is exactly how
//! "decomposition ⇒ everything in P-SLOCAL (= P-RLOCAL [GHK18])" works; the
//! consumers in [`crate::mis`]/[`crate::coloring`] are special cases with
//! `r = 1`. This module implements the general reduction with the cost
//! accounting of the theorem — and at the theorem's parallelism: the fast
//! path never materializes `G^{2r+1}` (validation goes through
//! [`Decomposition::validate_weak_power`]'s lazy ball scans and scratch-BFS
//! weak diameters), every SLOCAL step costs `O(ball)` via the arena-backed
//! [`SlocalRunner`], and [`run_slocal_via_decomposition_threads`] executes
//! each color class's clusters across scoped threads with bit-identical
//! outputs. The quadratic original is retained as
//! [`reference_run_slocal_via_decomposition`] for differential testing.

use crate::decomposition::types::{DecompError, Decomposition};
use locality_graph::metrics::{member_distances_with, reference_weak_diameter, DiameterScratch};
use locality_graph::power::reference_power_graph;
use locality_graph::Graph;
use locality_sim::cost::CostMeter;
use locality_sim::slocal::{BallView, SlocalRunner, SlocalScratch};

/// Outcome of the reduction.
#[derive(Debug, Clone)]
pub struct SlocalReductionOutcome<T> {
    /// Per-node outputs of the SLOCAL algorithm.
    pub outputs: Vec<T>,
    /// LOCAL-model round accounting:
    /// `Σ_colors (weak diameter of the color's clusters in G + 2r + 2)`.
    pub meter: CostMeter,
    /// The execution order that was used (by cluster color, then cluster,
    /// then node id).
    pub order: Vec<usize>,
}

/// Everything the reduction derives from the decomposition before any step
/// runs: the validated schedule and the round bill. Cacheable — the serving
/// [`Session`](crate::serve::Session) computes it once per `(graph, r)` and
/// replays it across requests.
#[derive(Debug, Clone)]
pub(crate) struct ReductionPlan {
    pub(crate) order: Vec<usize>,
    /// `(color, cluster ids ascending)` in ascending color order.
    pub(crate) classes: Vec<(usize, Vec<u32>)>,
    pub(crate) rounds: u64,
}

/// Exact weak diameter of `members` by farthest-first refinement: one BFS
/// from the first member gives the distance profile and the bound
/// `W ≤ 2·max d`; members are then swept in descending first-distance order,
/// stopping once `2·d_i ≤ best` — every unswept pair `{x, y}` has
/// `d(x, y) ≤ d(x, u₁) + d(u₁, y) ≤ 2·d_i ≤ best`, so `best` is exact. On
/// low-diameter graphs this is typically 2–3 BFS instead of `|members|`.
fn exact_weak_diameter(
    g: &Graph,
    members: &[usize],
    scratch: &mut DiameterScratch,
    profile: &mut Vec<(u32, u32)>,
    buf: &mut Vec<(u32, u32)>,
) -> u32 {
    let e1 = member_distances_with(g, members[0], members, scratch, profile)
        .expect("validated clusters are weakly connected"); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
    let mut best = e1;
    profile.sort_unstable_by(|a, b| (b.1, a.0).cmp(&(a.1, b.0)));
    for &(u, dist) in profile.iter() {
        if 2 * dist <= best {
            break;
        }
        let ecc = member_distances_with(g, u as usize, members, scratch, buf)
            .expect("validated clusters are weakly connected"); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
        best = best.max(ecc);
    }
    best
}

/// Validate `d` against `G^{2r+1}` (lazily — the power graph is never
/// materialized) and lay out the schedule.
///
/// The round bill needs, per color, only the **maximum** weak diameter over
/// the class's clusters, so the plan computes one member-profile BFS per
/// cluster (which doubles as the weak-connectivity check) and runs the exact
/// [`exact_weak_diameter`] sweep only on clusters whose `2·ecc` upper bound
/// beats the running class maximum — skipped clusters provably cannot raise
/// it. The resulting rounds equal the reference's member-by-member
/// computation exactly.
///
/// # Errors
/// The first violated invariant, as a [`DecompError`] — the same conditions
/// the reference path's materialized `validate_weak(&power_graph(g, 2r+1))`
/// enforces. The panicking entry points `expect` it; the serving session
/// maps it into its typed `SolveError`.
pub(crate) fn plan_reduction(
    g: &Graph,
    r: u32,
    d: &Decomposition,
) -> Result<ReductionPlan, DecompError> {
    plan_reduction_with(g, r, d, &mut DiameterScratch::new(g.node_count()))
}

/// [`plan_reduction`] over a caller-owned [`DiameterScratch`] (the serving
/// session reuses one scratch arena across plan builds on its pinned graph).
pub(crate) fn plan_reduction_with(
    g: &Graph,
    r: u32,
    d: &Decomposition,
    scratch: &mut DiameterScratch,
) -> Result<ReductionPlan, DecompError> {
    let k = 2 * r + 1;
    let clustering = d.clustering();
    if clustering.node_count() != g.node_count() {
        return Err(DecompError::WrongGraph {
            got: clustering.node_count(),
            expected: g.node_count(),
        });
    }
    if let Some(&node) = clustering.unclustered().first() {
        return Err(DecompError::UnclusteredNode { node });
    }
    // Properness over G^{2r+1} edges, one lazy ball at a time (the same
    // scan `Decomposition::validate_weak_power` runs; connectivity and
    // diameters are handled below, fused with the round bill).
    d.check_power_properness(g, k)?;

    // One BFS per cluster: the member distance profile from the first member
    // (its maximum `ecc1` lower-bounds the weak diameter, `2·ecc1` upper-
    // bounds it) doubling as the weak-connectivity check.
    let mut profile: Vec<(u32, u32)> = Vec::new();
    let mut buf: Vec<(u32, u32)> = Vec::new();
    let mut ecc1: Vec<u32> = Vec::with_capacity(clustering.cluster_count());
    for c in 0..clustering.cluster_count() {
        let members = clustering.members(c);
        match member_distances_with(g, members[0], members, scratch, &mut profile) {
            Some(e) => ecc1.push(e),
            None => return Err(DecompError::DisconnectedCluster { cluster: c }),
        }
    }

    let mut order: Vec<usize> = g.nodes().collect();
    order.sort_by_key(|&v| {
        let c = clustering.cluster_of(v).expect("total"); // audit: allow(panic) -- clustering is total over clustered nodes, validated where it was built
        (d.color_of_cluster(c), c, v)
    });

    let classes = crate::consume::group_by_color(d);
    let mut rounds = 0u64;
    for (_, clusters) in &classes {
        let mut worst = clusters
            .iter()
            .map(|&c| ecc1[c as usize])
            .max()
            .unwrap_or(0);
        for &c in clusters {
            if 2 * ecc1[c as usize] > worst {
                let w = exact_weak_diameter(
                    g,
                    clustering.members(c as usize),
                    scratch,
                    &mut profile,
                    &mut buf,
                );
                worst = worst.max(w);
            }
        }
        rounds += u64::from(worst) + 2 * u64::from(r) + 2;
    }

    Ok(ReductionPlan {
        order,
        classes,
        rounds,
    })
}

/// Run an SLOCAL algorithm of locality `r` in the LOCAL model using a
/// decomposition of `G^{2r+1}`.
///
/// `step` is the SLOCAL step function, executed under mechanical locality
/// enforcement ([`SlocalRunner`]) — sequentially here (the `FnMut` contract
/// allows stateful steps); [`run_slocal_via_decomposition_threads`] runs the
/// color classes in parallel for stateless steps, with identical output.
///
/// # Panics
/// Panics if `decomp_of_power` is not a valid decomposition of `G^{2r+1}`
/// (weak-diameter validation, performed lazily — the power graph is never
/// materialized), or if the SLOCAL step reads outside its ball.
///
/// # Example
/// ```
/// use locality_core::decomposition::ball_carving_decomposition;
/// use locality_core::slocal::run_slocal_via_decomposition;
/// use locality_graph::prelude::*;
///
/// // Greedy MIS has SLOCAL locality 1; decompose G^3.
/// let g = Graph::cycle(12);
/// let g3 = power_graph(&g, 3);
/// let order: Vec<usize> = (0..12).collect();
/// let d = ball_carving_decomposition(&g3, &order).decomposition;
/// let out = run_slocal_via_decomposition(&g, 1, &d, |view| {
///     !view
///         .neighbors(view.center())
///         .any(|u| view.output(u).copied().unwrap_or(false))
/// });
/// // The output is a valid MIS of g.
/// for (u, v) in g.edges() {
///     assert!(!(out.outputs[u] && out.outputs[v]));
/// }
/// ```
pub fn run_slocal_via_decomposition<T, F>(
    g: &Graph,
    r: u32,
    decomp_of_power: &Decomposition,
    step: F,
) -> SlocalReductionOutcome<T>
where
    F: FnMut(&BallView<'_, T>) -> T,
{
    let plan =
        plan_reduction(g, r, decomp_of_power).expect("decomposition must be valid for G^(2r+1)"); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
    let runner = SlocalRunner::new(g, r);
    let (outputs, _stats) = runner.run(&plan.order, step);
    SlocalReductionOutcome {
        outputs,
        meter: CostMeter::rounds_only(plan.rounds),
        order: plan.order,
    }
}

/// [`run_slocal_via_decomposition`] with each color class's clusters
/// executed across `threads` scoped threads (`0` = all available) over
/// fixed cluster buckets. Same-color clusters of a `G^{2r+1}` decomposition
/// are more than `2r+1` apart in `G`, so their radius-`r` read balls —
/// and hence their reads and writes — are disjoint: outputs are
/// bit-identical to the sequential path for every thread count (re-checked
/// on every call under the `determinism-checks` cargo feature).
///
/// The step function must be stateless across calls (`Fn`), and outputs
/// cross thread boundaries, hence the extra bounds.
///
/// # Panics
/// As [`run_slocal_via_decomposition`].
pub fn run_slocal_via_decomposition_threads<T, F>(
    g: &Graph,
    r: u32,
    decomp_of_power: &Decomposition,
    threads: usize,
    step: F,
) -> SlocalReductionOutcome<T>
where
    T: Send + Sync + PartialEq + std::fmt::Debug,
    F: Fn(&BallView<'_, T>) -> T + Sync,
{
    let result = reduction_parallel(g, r, decomp_of_power, threads, &step);
    #[cfg(feature = "determinism-checks")]
    {
        let sequential = run_slocal_via_decomposition(g, r, decomp_of_power, &step);
        assert_eq!(
            result.outputs, sequential.outputs,
            "determinism check: parallel reduction diverged from sequential"
        );
        assert_eq!(result.meter, sequential.meter);
        assert_eq!(result.order, sequential.order);
    }
    result
}

fn reduction_parallel<T, F>(
    g: &Graph,
    r: u32,
    d: &Decomposition,
    threads: usize,
    step: &F,
) -> SlocalReductionOutcome<T>
where
    T: Send + Sync,
    F: Fn(&BallView<'_, T>) -> T + Sync,
{
    let plan = plan_reduction(g, r, d).expect("decomposition must be valid for G^(2r+1)"); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
    let outputs = reduction_with_plan(g, r, d, &plan, threads, step);
    SlocalReductionOutcome {
        outputs,
        meter: CostMeter::rounds_only(plan.rounds),
        order: plan.order,
    }
}

/// The plan-reusing form of the parallel reduction: execute one color class
/// at a time over fixed cluster buckets against a cached [`ReductionPlan`]
/// (the serving session validates and plans once per `(graph, r)`), and
/// return just the per-node outputs — the caller already holds the plan's
/// round bill and order. Bit-identical to
/// [`run_slocal_via_decomposition_threads`] by construction.
pub(crate) fn reduction_with_plan<T, F>(
    g: &Graph,
    r: u32,
    d: &Decomposition,
    plan: &ReductionPlan,
    threads: usize,
    step: &F,
) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(&BallView<'_, T>) -> T + Sync,
{
    let threads = crate::consume::resolve_threads(threads);
    let clustering = d.clustering();
    let n = g.node_count();
    let runner = SlocalRunner::new(g, r);
    let mut outputs: Vec<Option<T>> = (0..n).map(|_| None).collect();

    for (_, clusters) in &plan.classes {
        let members_total: usize = clusters
            .iter()
            .map(|&c| clustering.members(c as usize).len())
            .sum();
        let parallel = members_total >= crate::consume::PARALLEL_MIN_MEMBERS;
        let outputs_ref = &outputs;
        let staged = crate::consume::process_clusters(
            clusters,
            threads,
            parallel,
            || SlocalScratch::new(n),
            &|scratch: &mut SlocalScratch, c, out: &mut Vec<(u32, T)>| {
                runner.process_span(
                    scratch,
                    outputs_ref,
                    out,
                    clustering.members(c as usize),
                    step,
                );
            },
        );
        for bucket in staged {
            for (v, value) in bucket {
                outputs[v as usize] = Some(value);
            }
        }
    }

    outputs
        .into_iter()
        .map(|o| o.expect("every node processed")) // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
        .collect()
}

/// The pre-optimization reduction, retained as the differential oracle:
/// materializes `G^{2r+1}` with the quadratic [`reference_power_graph`],
/// validates against it with one full-`n` BFS per cluster member
/// ([`reference_weak_diameter`], the pre-rewrite validator's cost), and
/// charges rounds from full-`n`-BFS weak diameters — `O(n·(n + m_{G^k}))`
/// before the first step runs.
///
/// # Panics
/// As [`run_slocal_via_decomposition`].
pub fn reference_run_slocal_via_decomposition<T, F>(
    g: &Graph,
    r: u32,
    decomp_of_power: &Decomposition,
    step: F,
) -> SlocalReductionOutcome<T>
where
    F: FnMut(&BallView<'_, T>) -> T,
{
    let gp = reference_power_graph(g, 2 * r + 1);
    reference_validate_weak(&gp, decomp_of_power)
        .expect("decomposition must be valid for G^(2r+1)"); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
    let clustering = decomp_of_power.clustering();

    // Execution order: by (cluster color, cluster id, node id).
    let mut order: Vec<usize> = g.nodes().collect();
    order.sort_by_key(|&v| {
        let c = clustering.cluster_of(v).expect("total"); // audit: allow(panic) -- clustering is total over clustered nodes, validated where it was built
        (decomp_of_power.color_of_cluster(c), c, v)
    });

    // The order is a legal SLOCAL schedule; run it with enforcement.
    let runner = SlocalRunner::new(g, r);
    let (outputs, _stats) = runner.run(&order, step);

    // LOCAL round accounting per the reduction: colors processed in
    // sequence; within a color, each cluster gathers its members and their
    // r-fringe (O(weak diameter + r) rounds), simulates sequentially at the
    // leader, and redistributes.
    let mut colors: Vec<usize> = (0..clustering.cluster_count())
        .map(|c| decomp_of_power.color_of_cluster(c))
        .collect();
    colors.sort_unstable();
    colors.dedup();
    let mut rounds = 0u64;
    for &color in &colors {
        let mut worst = 0u64;
        for c in 0..clustering.cluster_count() {
            if decomp_of_power.color_of_cluster(c) != color {
                continue;
            }
            let diam = reference_weak_diameter(g, clustering.members(c)).unwrap_or(0) as u64;
            worst = worst.max(diam);
        }
        rounds += worst + 2 * r as u64 + 2;
    }

    SlocalReductionOutcome {
        outputs,
        meter: CostMeter::rounds_only(rounds),
        order,
    }
}

/// The pre-rewrite weak validator, verbatim in cost and behavior: one
/// full-`n` BFS per cluster member via [`reference_weak_diameter`] — kept
/// here so the retained reference path stays an honest baseline instead of
/// silently inheriting the scratch-BFS metrics.
fn reference_validate_weak(gp: &Graph, d: &Decomposition) -> Result<(), DecompError> {
    let clustering = d.clustering();
    if clustering.node_count() != gp.node_count() {
        return Err(DecompError::WrongGraph {
            got: clustering.node_count(),
            expected: gp.node_count(),
        });
    }
    if let Some(&node) = clustering.unclustered().first() {
        return Err(DecompError::UnclusteredNode { node });
    }
    for c in 0..clustering.cluster_count() {
        if reference_weak_diameter(gp, clustering.members(c)).is_none() {
            return Err(DecompError::DisconnectedCluster { cluster: c });
        }
    }
    for (u, v) in gp.edges() {
        let (cu, cv) = (
            clustering.cluster_of(u).expect("total"), // audit: allow(panic) -- clustering is total over clustered nodes, validated where it was built
            clustering.cluster_of(v).expect("total"), // audit: allow(panic) -- clustering is total over clustered nodes, validated where it was built
        );
        if cu != cv && d.color_of_cluster(cu) == d.color_of_cluster(cv) {
            return Err(DecompError::AdjacentSameColor {
                a: cu,
                b: cv,
                color: d.color_of_cluster(cu),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::ball_carving_decomposition;
    use crate::mis::verify_mis;
    use locality_graph::generators::Family;
    use locality_graph::power::power_graph;
    use locality_rand::prng::SplitMix64;

    fn power_decomposition(g: &Graph, r: u32) -> Decomposition {
        let gp = power_graph(g, 2 * r + 1);
        let order: Vec<usize> = (0..gp.node_count()).collect();
        ball_carving_decomposition(&gp, &order).decomposition
    }

    fn greedy_mis_step(view: &BallView<'_, bool>) -> bool {
        !view
            .neighbors(view.center())
            .any(|u| view.output(u).copied().unwrap_or(false))
    }

    #[test]
    fn greedy_mis_runs_via_reduction_on_families() {
        let mut p = SplitMix64::new(151);
        for fam in [Family::Cycle, Family::Grid, Family::RandomTree] {
            let g = fam.generate(60, &mut p);
            let d = power_decomposition(&g, 1);
            let out = run_slocal_via_decomposition(&g, 1, &d, greedy_mis_step);
            verify_mis(&g, &out.outputs).unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
            assert!(out.meter.rounds > 0);
            assert_eq!(out.meter.random_bits, 0, "the reduction is deterministic");
        }
    }

    #[test]
    fn fast_reduction_matches_reference() {
        let mut p = SplitMix64::new(155);
        for fam in [Family::Cycle, Family::Grid, Family::GnpSparse] {
            let g = fam.generate(70, &mut p);
            for r in [1u32, 2] {
                let d = power_decomposition(&g, r);
                let reference = reference_run_slocal_via_decomposition(&g, r, &d, greedy_mis_step);
                let fast = run_slocal_via_decomposition(&g, r, &d, greedy_mis_step);
                assert_eq!(fast.outputs, reference.outputs, "{} r={r}", fam.name());
                assert_eq!(fast.meter, reference.meter, "{} r={r}", fam.name());
                assert_eq!(fast.order, reference.order, "{} r={r}", fam.name());
                for threads in [1usize, 3, 64] {
                    let par =
                        run_slocal_via_decomposition_threads(&g, r, &d, threads, greedy_mis_step);
                    assert_eq!(
                        par.outputs,
                        reference.outputs,
                        "{} r={r} t={threads}",
                        fam.name()
                    );
                    assert_eq!(par.meter, reference.meter);
                    assert_eq!(par.order, reference.order);
                }
            }
        }
    }

    #[test]
    fn parallel_reduction_engages_threshold_and_matches() {
        // Large enough that a color class crosses the parallel threshold.
        let g = Graph::cycle(5000);
        let d = power_decomposition(&g, 1);
        let seq = run_slocal_via_decomposition(&g, 1, &d, greedy_mis_step);
        let par = run_slocal_via_decomposition_threads(&g, 1, &d, 4, greedy_mis_step);
        assert_eq!(par.outputs, seq.outputs);
        assert_eq!(par.meter, seq.meter);
        verify_mis(&g, &seq.outputs).unwrap();
    }

    #[test]
    fn greedy_coloring_with_locality_one() {
        let mut p = SplitMix64::new(153);
        let g = Graph::gnp_connected(50, 0.08, &mut p);
        let d = power_decomposition(&g, 1);
        let out = run_slocal_via_decomposition(&g, 1, &d, |view| {
            let used: Vec<usize> = view
                .neighbors(view.center())
                .filter_map(|u| view.output(u).copied())
                .collect();
            (0..).find(|c| !used.contains(c)).expect("free color")
        });
        crate::coloring::verify_coloring(&g, &out.outputs, g.max_degree() + 1).unwrap();
    }

    #[test]
    fn locality_two_algorithm_distance_two_coloring() {
        // Distance-2 coloring has SLOCAL locality 2: color differs from
        // everything within distance 2.
        let g = Graph::cycle(20);
        let d = power_decomposition(&g, 2);
        let out = run_slocal_via_decomposition(&g, 2, &d, |view| {
            let used: Vec<usize> = view
                .nodes()
                .into_iter()
                .filter(|&u| u != view.center() && view.distance(u).unwrap_or(3) <= 2)
                .filter_map(|u| view.output(u).copied())
                .collect();
            (0..).find(|c| !used.contains(c)).expect("free color")
        });
        // Verify on the square graph.
        let g2 = power_graph(&g, 2);
        crate::coloring::verify_coloring(&g2, &out.outputs, g2.max_degree() + 1).unwrap();
    }

    #[test]
    fn order_groups_by_color_then_cluster() {
        let g = Graph::path(20);
        let d = power_decomposition(&g, 1);
        let out = run_slocal_via_decomposition(&g, 1, &d, |_view: &BallView<'_, u8>| 0u8);
        // Colors along the order are non-decreasing.
        let clustering = d.clustering();
        let colors: Vec<usize> = out
            .order
            .iter()
            .map(|&v| d.color_of_cluster(clustering.cluster_of(v).unwrap()))
            .collect();
        assert!(colors.windows(2).all(|w| w[0] <= w[1]));
    }
}
