//! The SLOCAL → LOCAL reduction of [GKM17] (the machinery behind the
//! paper's completeness claims).
//!
//! [GKM17] proved: given a network decomposition of the power graph
//! `G^{2r+1}` with few colors and small diameter, any SLOCAL algorithm of
//! locality `r` runs in the LOCAL model — process cluster colors in order;
//! same-color clusters of `G^{2r+1}` are pairwise at distance `> 2r+1` in
//! `G`, so their radius-`r` read balls are disjoint and they can execute
//! their sequential steps in parallel, each cluster working through its own
//! members sequentially after gathering its neighborhood.
//!
//! Combined with [`crate::decomposition`] this is exactly how
//! "decomposition ⇒ everything in P-SLOCAL (= P-RLOCAL [GHK18])" works; the
//! consumers in [`crate::mis`]/[`crate::coloring`] are special cases with
//! `r = 1`. This module implements the general reduction with the cost
//! accounting of the theorem.

use crate::decomposition::types::Decomposition;
use locality_graph::metrics::weak_diameter;
use locality_graph::power::power_graph;
use locality_graph::Graph;
use locality_sim::cost::CostMeter;
use locality_sim::slocal::{BallView, SlocalRunner};

/// Outcome of the reduction.
#[derive(Debug, Clone)]
pub struct SlocalReductionOutcome<T> {
    /// Per-node outputs of the SLOCAL algorithm.
    pub outputs: Vec<T>,
    /// LOCAL-model round accounting:
    /// `Σ_colors (weak diameter of the color's clusters in G + 2r + 2)`.
    pub meter: CostMeter,
    /// The execution order that was used (by cluster color, then cluster,
    /// then node id).
    pub order: Vec<usize>,
}

/// Run an SLOCAL algorithm of locality `r` in the LOCAL model using a
/// decomposition of `G^{2r+1}`.
///
/// `step` is the SLOCAL step function, executed under mechanical locality
/// enforcement ([`SlocalRunner`]).
///
/// # Panics
/// Panics if `decomp_of_power` is not a valid decomposition of `G^{2r+1}`
/// (weak-diameter validation), or if the SLOCAL step reads outside its ball.
///
/// # Example
/// ```
/// use locality_core::decomposition::ball_carving_decomposition;
/// use locality_core::slocal::run_slocal_via_decomposition;
/// use locality_graph::prelude::*;
///
/// // Greedy MIS has SLOCAL locality 1; decompose G^3.
/// let g = Graph::cycle(12);
/// let g3 = power_graph(&g, 3);
/// let order: Vec<usize> = (0..12).collect();
/// let d = ball_carving_decomposition(&g3, &order).decomposition;
/// let out = run_slocal_via_decomposition(&g, 1, &d, |view| {
///     !view
///         .neighbors(view.center())
///         .into_iter()
///         .any(|u| view.output(u).copied().unwrap_or(false))
/// });
/// // The output is a valid MIS of g.
/// for (u, v) in g.edges() {
///     assert!(!(out.outputs[u] && out.outputs[v]));
/// }
/// ```
pub fn run_slocal_via_decomposition<T, F>(
    g: &Graph,
    r: u32,
    decomp_of_power: &Decomposition,
    step: F,
) -> SlocalReductionOutcome<T>
where
    F: FnMut(&BallView<'_, T>) -> T,
{
    let gp = power_graph(g, 2 * r + 1);
    decomp_of_power
        .validate_weak(&gp)
        .expect("decomposition must be valid for G^(2r+1)");
    let clustering = decomp_of_power.clustering();

    // Execution order: by (cluster color, cluster id, node id).
    let mut order: Vec<usize> = g.nodes().collect();
    order.sort_by_key(|&v| {
        let c = clustering.cluster_of(v).expect("total");
        (decomp_of_power.color_of_cluster(c), c, v)
    });

    // The order is a legal SLOCAL schedule; run it with enforcement.
    let runner = SlocalRunner::new(g, r);
    let (outputs, _stats) = runner.run(&order, step);

    // LOCAL round accounting per the reduction: colors processed in
    // sequence; within a color, each cluster gathers its members and their
    // r-fringe (O(weak diameter + r) rounds), simulates sequentially at the
    // leader, and redistributes.
    let mut colors: Vec<usize> = (0..clustering.cluster_count())
        .map(|c| decomp_of_power.color_of_cluster(c))
        .collect();
    colors.sort_unstable();
    colors.dedup();
    let mut rounds = 0u64;
    for &color in &colors {
        let mut worst = 0u64;
        for c in 0..clustering.cluster_count() {
            if decomp_of_power.color_of_cluster(c) != color {
                continue;
            }
            let diam = weak_diameter(g, clustering.members(c)).unwrap_or(0) as u64;
            worst = worst.max(diam);
        }
        rounds += worst + 2 * r as u64 + 2;
    }

    SlocalReductionOutcome {
        outputs,
        meter: CostMeter::rounds_only(rounds),
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::ball_carving_decomposition;
    use crate::mis::verify_mis;
    use locality_graph::generators::Family;
    use locality_rand::prng::SplitMix64;

    fn power_decomposition(g: &Graph, r: u32) -> Decomposition {
        let gp = power_graph(g, 2 * r + 1);
        let order: Vec<usize> = (0..gp.node_count()).collect();
        ball_carving_decomposition(&gp, &order).decomposition
    }

    #[test]
    fn greedy_mis_runs_via_reduction_on_families() {
        let mut p = SplitMix64::new(151);
        for fam in [Family::Cycle, Family::Grid, Family::RandomTree] {
            let g = fam.generate(60, &mut p);
            let d = power_decomposition(&g, 1);
            let out = run_slocal_via_decomposition(&g, 1, &d, |view| {
                !view
                    .neighbors(view.center())
                    .into_iter()
                    .any(|u| view.output(u).copied().unwrap_or(false))
            });
            verify_mis(&g, &out.outputs).unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
            assert!(out.meter.rounds > 0);
            assert_eq!(out.meter.random_bits, 0, "the reduction is deterministic");
        }
    }

    #[test]
    fn greedy_coloring_with_locality_one() {
        let mut p = SplitMix64::new(153);
        let g = Graph::gnp_connected(50, 0.08, &mut p);
        let d = power_decomposition(&g, 1);
        let out = run_slocal_via_decomposition(&g, 1, &d, |view| {
            let used: Vec<usize> = view
                .neighbors(view.center())
                .into_iter()
                .filter_map(|u| view.output(u).copied())
                .collect();
            (0..).find(|c| !used.contains(c)).expect("free color")
        });
        crate::coloring::verify_coloring(&g, &out.outputs, g.max_degree() + 1).unwrap();
    }

    #[test]
    fn locality_two_algorithm_distance_two_coloring() {
        // Distance-2 coloring has SLOCAL locality 2: color differs from
        // everything within distance 2.
        let g = Graph::cycle(20);
        let d = power_decomposition(&g, 2);
        let out = run_slocal_via_decomposition(&g, 2, &d, |view| {
            let used: Vec<usize> = view
                .nodes()
                .into_iter()
                .filter(|&u| u != view.center() && view.distance(u).unwrap_or(3) <= 2)
                .filter_map(|u| view.output(u).copied())
                .collect();
            (0..).find(|c| !used.contains(c)).expect("free color")
        });
        // Verify on the square graph.
        let g2 = power_graph(&g, 2);
        crate::coloring::verify_coloring(&g2, &out.outputs, g2.max_degree() + 1).unwrap();
    }

    #[test]
    fn order_groups_by_color_then_cluster() {
        let g = Graph::path(20);
        let d = power_decomposition(&g, 1);
        let out = run_slocal_via_decomposition(&g, 1, &d, |_view: &BallView<'_, u8>| 0u8);
        // Colors along the order are non-decreasing.
        let clustering = d.clustering();
        let colors: Vec<usize> = out
            .order
            .iter()
            .map(|&v| d.color_of_cluster(clustering.cluster_of(v).unwrap()))
            .collect();
        assert!(colors.windows(2).all(|w| w[0] <= w[1]));
    }
}
