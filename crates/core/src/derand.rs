//! Derandomization thresholds (§4): seed enumeration (Lemma 4.1) and the
//! "lie about n" technique (Theorem 4.3, Corollaries 4.4/4.5, Theorem 4.6).
//!
//! Lemma 4.1: if a non-uniform randomized algorithm errs with probability
//! `< 2^{-n²}` on graphs of at most `n` nodes, some *single* assignment of
//! the random bits works for **every** such graph (there are fewer than
//! `2^{n²}` of them), so the algorithm derandomizes with zero slowdown.
//! [`enumerate_derandomize`] performs exactly this search over an explicit
//! instance family and an explicit seed space.
//!
//! Theorem 4.3/4.6: to *reach* such error probabilities, pretend the graph
//! has `N ≫ n` nodes; the algorithm cannot tell, its error drops as a
//! function of `N`, and the run time grows only through `T(N)`. The
//! threshold calculators here compute the published trade-off curves; the
//! bench tabulates them against the `2^{O(√log n)}` state of the art the
//! paper compares to.

use locality_rand::shared::SharedSeed;

/// Report of a seed-space enumeration (Lemma 4.1).
#[derive(Debug, Clone)]
pub struct EnumerationReport {
    /// A seed that succeeded on every instance, if one exists.
    pub good_seed: Option<SharedSeed>,
    /// For each seed (in enumeration order), how many instances it failed.
    pub failures_per_seed: Vec<u32>,
    /// Number of instances.
    pub instances: usize,
    /// Fraction of (seed, instance) pairs that failed — the empirical error
    /// probability of the randomized algorithm over this family.
    pub error_rate: f64,
}

/// Enumerate every seed of `seed_bits` bits and run `algorithm` on every
/// instance; find a seed that succeeds everywhere (the deterministic
/// algorithm Lemma 4.1 promises whenever the error probability is below
/// `1/#instances`).
///
/// # Panics
/// Panics if `seed_bits > 24` (the enumeration would be prohibitive).
pub fn enumerate_derandomize<I>(
    instances: &[I],
    seed_bits: usize,
    mut algorithm: impl FnMut(&I, &SharedSeed) -> bool,
) -> EnumerationReport {
    assert!(seed_bits <= 24, "seed space 2^{seed_bits} too large");
    let mut failures_per_seed = Vec::with_capacity(1 << seed_bits);
    let mut good_seed = None;
    let mut total_failures = 0u64;
    for seed in SharedSeed::enumerate_all(seed_bits) {
        let fails = instances
            .iter()
            .filter(|inst| !algorithm(inst, &seed))
            .count() as u32;
        total_failures += fails as u64;
        if fails == 0 && good_seed.is_none() {
            good_seed = Some(seed.clone());
        }
        failures_per_seed.push(fails);
    }
    let pairs = (failures_per_seed.len() * instances.len()).max(1);
    EnumerationReport {
        good_seed,
        failures_per_seed,
        instances: instances.len(),
        error_rate: total_failures as f64 / pairs as f64,
    }
}

/// `log2` of the number of labeled graphs on at most `n` nodes with ids from
/// `{1..n^c}` — the `|G_n| < 2^{n²}` counting step of Lemma 4.1.
pub fn log2_graph_family_size(n: u64, c: u32) -> f64 {
    let n = n as f64;
    // log2( n * 2^(n choose 2) * n^(c n) ) = log2 n + n(n-1)/2 + c·n·log2 n.
    n.log2() + n * (n - 1.0) / 2.0 + (c as f64) * n * n.log2()
}

/// Theorem 4.3: given a randomized algorithm with success
/// `1 − 2^{-2^{ε·log^β T}}`, the virtual size `N` to "lie" about so the error
/// drops below `2^{-n²}` satisfies `log T(N) = (2/ε)^{1/β}·log^{1/β} n`.
/// Returns `log2 T(N)`.
///
/// # Panics
/// Panics if `eps ≤ 0` or `beta ≤ 0`.
pub fn theorem43_log_t_of_n(n: u64, eps: f64, beta: f64) -> f64 {
    assert!(eps > 0.0 && beta > 0.0, "parameters must be positive");
    let log_n = (n as f64).log2().max(1.0);
    (2.0 / eps).powf(1.0 / beta) * log_n.powf(1.0 / beta)
}

/// The resulting deterministic round complexity `2^{O(log^{1/β} n)}` of
/// Theorem 4.3 (as a count, saturating).
pub fn theorem43_rounds(n: u64, eps: f64, beta: f64) -> f64 {
    theorem43_log_t_of_n(n, eps, beta).exp2()
}

/// The [PS92] deterministic benchmark `2^{c·√(log2 n)}` the paper compares
/// derandomization results against (`c = 1` by convention here; it is a
/// shape, not a constant).
pub fn ps92_rounds(n: u64) -> f64 {
    ((n as f64).log2().max(1.0)).sqrt().exp2()
}

/// Theorem 4.6: the error threshold `2^{-2^{log^ε n}}` below which a
/// polylog-time randomized algorithm derandomizes to polylog time. Returns
/// `log2(-log2(error))`, i.e. `log^ε n`, plus the virtual size exponent
/// `log N = (2 log n)^{1/ε}`.
pub fn theorem46_thresholds(n: u64, eps: f64) -> (f64, f64) {
    assert!(eps > 0.0, "eps must be positive");
    let log_n = (n as f64).log2().max(1.0);
    let exponent = log_n.powf(eps); // log2 of -log2(error)
    let log_virtual = (2.0 * log_n).powf(1.0 / eps);
    (exponent, log_virtual)
}

/// One row of the [`lie_about_n`] demonstration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LieAboutNRow {
    /// The pretended network size `N` handed to the algorithm.
    pub pretended_n: usize,
    /// Empirical failure rate over the trials.
    pub failure_rate: f64,
    /// Mean rounds (the cost of the lie: `T(N)`, not `T(n)`).
    pub mean_rounds: f64,
}

/// The "lie about n" mechanism of Theorems 4.3/4.6, observed empirically:
/// run the Elkin–Neiman construction on a *fixed* graph while telling it the
/// network has `N` nodes for increasing `N`. A non-uniform algorithm cannot
/// distinguish the real graph from a component of an `N`-node one, so its
/// failure probability falls with `N` while its round cost grows — the exact
/// trade-off the theorems exploit. To keep the effect observable at
/// simulation scale, the algorithm is parameterized *leanly* in the claimed
/// size (`⌈log₂N/2⌉` phases, cap `⌈log₂N/2⌉+2`) rather than with the
/// paper's 10× safety factors.
pub fn lie_about_n(
    g: &locality_graph::Graph,
    pretended_sizes: &[usize],
    trials: u64,
    seed0: u64,
) -> Vec<LieAboutNRow> {
    use crate::decomposition::elkin_neiman::{elkin_neiman, ElkinNeimanConfig};
    use locality_rand::source::PrngSource;

    pretended_sizes
        .iter()
        .map(|&pretended| {
            assert!(
                pretended >= g.node_count(),
                "the pretended size must be an upper bound on n"
            );
            let log = locality_graph::Graph::empty(pretended.max(2)).log2_n();
            let cfg = ElkinNeimanConfig {
                phases: log.div_ceil(2).max(1),
                cap: (log.div_ceil(2) + 2).min(60),
            };
            let mut failures = 0u64;
            let mut rounds = 0u64;
            for t in 0..trials {
                let mut src = PrngSource::seeded(seed0 + t);
                let out = elkin_neiman(g, &cfg, &mut src);
                failures += out.decomposition.is_none() as u64;
                rounds += out.meter.rounds;
            }
            LieAboutNRow {
                pretended_n: pretended,
                failure_rate: failures as f64 / trials as f64,
                mean_rounds: rounds as f64 / trials as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitting::{solve_shared, SeedExpansion, SplittingInstance};
    use locality_rand::prng::SplitMix64;

    #[test]
    fn enumeration_finds_good_seed_for_splitting() {
        // A family of splitting instances; 12 raw seed bits color 12 V-nodes.
        let mut p = SplitMix64::new(121);
        let instances: Vec<SplittingInstance> = (0..8)
            .map(|_| SplittingInstance::random(6, 12, 5, &mut p))
            .collect();
        let report = enumerate_derandomize(&instances, 12, |h, seed| {
            solve_shared(h, seed, SeedExpansion::Raw)
                .map(|a| a.is_success())
                .unwrap_or(false)
        });
        // A random coloring fails with prob ≤ 6·2·2^-5 < 0.4 per instance;
        // over 2^12 seeds, plenty succeed on all 8 instances.
        assert!(
            report.good_seed.is_some(),
            "error rate {}",
            report.error_rate
        );
        assert!(report.error_rate < 0.5);
        assert_eq!(report.failures_per_seed.len(), 1 << 12);
    }

    #[test]
    fn enumeration_reports_absence() {
        // An unsatisfiable instance: a U-node with one neighbor can never
        // see two colors, so no seed works.
        let h = SplittingInstance::new(2, vec![vec![0]]).unwrap();
        let report = enumerate_derandomize(&[h], 4, |h, seed| {
            solve_shared(h, seed, SeedExpansion::Raw)
                .map(|a| a.is_success())
                .unwrap_or(false)
        });
        assert!(report.good_seed.is_none());
        assert!((report.error_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn graph_family_counting_matches_lemma() {
        // |G_n| < 2^{n²} for sufficiently large n (with ids from n^3 the
        // crossover is around n ≈ 35).
        assert!(
            log2_graph_family_size(10, 3) > 100.0,
            "small n: bound fails"
        );
        for n in [50u64, 200, 1000] {
            let lg = log2_graph_family_size(n, 3);
            assert!(lg < (n * n) as f64, "n={n}: log2|G| = {lg}");
        }
        // And the bound is tight-ish: it exceeds (n choose 2).
        let lg = log2_graph_family_size(100, 3);
        assert!(lg > 4950.0);
    }

    #[test]
    fn theorem43_curves_are_monotone() {
        // Larger β (stronger success probability) ⇒ faster deterministic
        // algorithms (smaller log T).
        let n = 1 << 20;
        let t3 = theorem43_log_t_of_n(n, 0.5, 3.0);
        let t4 = theorem43_log_t_of_n(n, 0.5, 4.0);
        assert!(t4 < t3);
        // β slightly above 2 reproduces the PS92 shape.
        let t2 = theorem43_rounds(n, 2.0, 2.0);
        let ps = ps92_rounds(n);
        assert!((t2.log2() - ps.log2()).abs() < 1.0, "{} vs {}", t2, ps);
    }

    #[test]
    fn theorem46_thresholds_scale() {
        let (e1, v1) = theorem46_thresholds(1 << 10, 0.5);
        let (e2, v2) = theorem46_thresholds(1 << 20, 0.5);
        assert!(e2 > e1);
        assert!(v2 > v1);
        // ε = 1: error exponent is exactly log n, virtual size 2^(2 log n).
        let (e, v) = theorem46_thresholds(1 << 16, 1.0);
        assert!((e - 16.0).abs() < 1e-9);
        assert!((v - 32.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn oversized_enumeration_rejected() {
        let _ = enumerate_derandomize(&[0u8], 30, |_, _| true);
    }

    #[test]
    fn lie_about_n_grows_budget_and_rounds() {
        let mut p = SplitMix64::new(191);
        let g = locality_graph::Graph::gnp_connected(60, 0.05, &mut p);
        let rows = lie_about_n(&g, &[60, 60_000, 60_000_000], 10, 7);
        assert_eq!(rows.len(), 3);
        // Larger pretended n => never a (meaningfully) higher failure rate,
        // and a larger round budget actually consumed on failure-prone runs.
        assert!(rows[0].failure_rate + 1e-9 >= rows[2].failure_rate);
        assert!(rows[2].pretended_n == 60_000_000);
        // The lean budget at the true n is fallible; at the inflated n it is
        // reliable.
        assert!(rows[2].failure_rate <= 0.2, "{rows:?}");
    }

    #[test]
    #[should_panic]
    fn lie_about_n_requires_upper_bound() {
        let g = locality_graph::Graph::path(10);
        let _ = lie_about_n(&g, &[5], 1, 1);
    }
}
