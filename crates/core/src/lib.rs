//! Algorithms from Ghaffari & Kuhn, *On the Use of Randomness in Local
//! Distributed Graph Algorithms* (PODC 2019).
//!
//! The paper asks two questions about randomized LOCAL/CONGEST algorithms:
//! **how much randomness** do they need (§3), and **how strong a success
//! probability** can they guarantee in a given round budget (§4). Network
//! decomposition is the complete problem through which both are studied; this
//! crate implements every construction of the paper plus the substrate
//! algorithms they invoke:
//!
//! | Paper | Module |
//! |---|---|
//! | Network decompositions (randomized [EN16], derandomized, deterministic) | [`decomposition`] |
//! | Ruling sets [AGLP89] | [`ruling`] |
//! | One private bit per `poly(log n)` hops (Thm 3.1, Lem 3.2/3.3, Thm 3.7) | [`sparse`] |
//! | `poly(log n)` shared bits in CONGEST (Thm 3.6) | [`shared`] |
//! | Splitting with `O(log n)` shared bits (Lem 3.4) | [`splitting`] |
//! | Conflict-free hypergraph multicoloring under k-wise bits (Thm 3.5) | [`cfc`] |
//! | Error boosting by shattering (Thm 4.2) | [`boost`] |
//! | Seed enumeration & "lie about n" (Lem 4.1, Thm 4.3/4.6) | [`derand`] |
//! | Consumers: MIS, (∆+1)-coloring, randomized & decomposition-derandomized | [`mis`], [`coloring`] |
//! | Local checkability (Def. 2.2) | [`checkers`] |
//!
//! Since the arena-executor refactor the core algorithms also expose the
//! unified [`algorithm::LocalAlgorithm`] interface (graph + ids + seed in,
//! labeling + [`algorithm::RoundStats`] out): MIS, trial coloring and the
//! Elkin–Neiman decomposition run as engine protocols, so their round,
//! message and random-bit budgets are measured by one metering path.
//!
//! The [`serve`] subsystem is the production façade over all of the above:
//! typed [`serve::Request`]/[`serve::Response`] problems, a data-driven
//! solver [`serve::registry`], a caching [`serve::Session`] that pins one
//! graph and amortizes its decomposition and scratch arenas across requests,
//! and a [`serve::Fleet`] that shards sessions across threads.

// Bracketed citation keys ([EN16], [GKM17], ...) are bibliography
// references, not intra-doc links.
#![allow(rustdoc::broken_intra_doc_links)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod boost;
pub mod cfc;
pub mod checkers;
pub mod coloring;
pub(crate) mod consume;
pub mod decomposition;
pub mod derand;
pub mod mis;
pub mod ruling;
pub mod serve;
pub mod shared;
pub mod sinkless;
pub mod slocal;
pub mod sparse;
pub mod splitting;
