//! Shared-randomness network decomposition in CONGEST (Theorem 3.6).
//!
//! The construction runs `O(log n)` *phases*; each phase consists of
//! `p = Θ(log n)` *epochs* with shrinking base radii
//! `R_i = (p − i)·c·log n` and doubling center-sampling probabilities
//! `q_i = min(1, 2^i·log n / n)`. A sampled center `u` draws a capped
//! geometric `X_u`; its cluster reaches `v` when `R_i + X_u ≥ d(u, v)`.
//! A reached node joins the best-measure center if the top-two gap exceeds 1
//! (with the runner-up floored at 0), is *set aside for the rest of the
//! phase* if reached without a sufficient gap, and otherwise proceeds to the
//! next epoch — where at the latest epoch `p` it samples itself with
//! probability 1. Every per-node random decision (sampling and radii) comes
//! from a `Θ(log² n)`-wise independent family expanded deterministically from
//! a `poly(log n)`-bit shared seed: the paper's argument shows only
//! `O(log n)` centers can reach a node per epoch, so `O(log² n)` seed bits
//! govern each local outcome and full independence is indistinguishable.
//!
//! The result is a strong-diameter `(O(log n), O(log² n))` decomposition with
//! congestion 1, in `poly(log n)` CONGEST rounds, from `poly(log n)` shared
//! bits — no private randomness anywhere.

use crate::decomposition::types::Decomposition;
use locality_graph::cluster::Clustering;
use locality_graph::traversal::bfs_distances_within;
use locality_graph::Graph;
use locality_rand::kwise::flat_index;
use locality_rand::shared::SharedSeed;
use locality_rand::source::Exhausted;
use locality_sim::cost::CostMeter;

/// Tuning parameters for the Theorem 3.6 construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedDecompConfig {
    /// Number of phases (paper: `O(log n)`).
    pub phases: u32,
    /// Epochs per phase (paper: `Θ(log n)`; the last epoch samples w.p. 1).
    pub epochs: u32,
    /// Base-radius decrement per epoch (paper: `c·log n`).
    pub radius_step: u32,
    /// Geometric cap for the random radii `X_u` (≤ 60).
    pub cap: u32,
    /// Independence parameter of the expanded family (paper: `Θ(log² n)`).
    pub kwise: usize,
}

impl SharedDecompConfig {
    /// Paper-shaped parameters for an `n`-node graph.
    pub fn for_graph(g: &Graph) -> Self {
        Self::for_n(g.node_count())
    }

    /// Paper-shaped parameters for a given `n`: `4·⌈log n⌉` phases, epochs
    /// so the final sampling probability reaches 1, radius step `⌈log n⌉`,
    /// cap `min(2⌈log n⌉ + 4, 60)`, independence `⌈log n⌉²` (capped for
    /// simulation tractability at 256).
    pub fn for_n(n: usize) -> Self {
        let log = Graph::empty(n.max(2)).log2_n();
        // Smallest p with 2^p * log >= n, plus one for safety.
        let mut epochs = 1u32;
        while (1u64 << epochs.min(62)) * log as u64 <= n as u64 {
            epochs += 1;
        }
        epochs += 1;
        Self {
            phases: 4 * log,
            epochs,
            radius_step: log,
            cap: (2 * log + 4).min(60),
            kwise: ((log * log) as usize).clamp(2, 256),
        }
    }

    /// Base radius of epoch `i ∈ 1..=epochs`.
    pub fn base_radius(&self, epoch: u32) -> u32 {
        (self.epochs - epoch) * self.radius_step
    }

    /// Largest possible cluster radius (`R_1 + cap`).
    pub fn max_cluster_radius(&self) -> u32 {
        self.base_radius(1) + self.cap
    }

    /// Shared seed bits the construction needs: two `kwise`-wise families.
    pub fn seed_bits_needed(&self) -> usize {
        2 * 61 * self.kwise
    }
}

/// Outcome of the shared-randomness construction.
#[derive(Debug, Clone)]
pub struct SharedOutcome {
    /// The decomposition, if every node was clustered.
    pub decomposition: Option<Decomposition>,
    /// Nodes never clustered.
    pub survivors: Vec<usize>,
    /// Shared random bits consumed (the whole network's budget).
    pub shared_bits: u64,
    /// Per phase: `(alive before, clustered)`.
    pub per_phase: Vec<(usize, usize)>,
    /// Round/bit accounting (CONGEST rounds: `O(R + cap)` per epoch).
    pub meter: CostMeter,
}

/// Run the Theorem 3.6 construction from a shared seed.
///
/// # Errors
/// Returns [`Exhausted`] if the seed is shorter than
/// [`SharedDecompConfig::seed_bits_needed`].
///
/// # Example
/// ```
/// use locality_core::shared::{shared_randomness_decomposition, SharedDecompConfig};
/// use locality_graph::prelude::*;
/// use locality_rand::prelude::*;
///
/// let g = Graph::grid(8, 8);
/// let cfg = SharedDecompConfig::for_graph(&g);
/// let mut sm = SplitMix64::new(5);
/// let seed = SharedSeed::from_prng(cfg.seed_bits_needed(), &mut sm);
/// let out = shared_randomness_decomposition(&g, &cfg, &seed).unwrap();
/// let d = out.decomposition.expect("whp success");
/// d.validate(&g).unwrap();
/// assert!(out.shared_bits as usize <= cfg.seed_bits_needed());
/// ```
pub fn shared_randomness_decomposition(
    g: &Graph,
    cfg: &SharedDecompConfig,
    seed: &SharedSeed,
) -> Result<SharedOutcome, Exhausted> {
    assert!(cfg.cap >= 1 && cfg.cap <= 60, "cap must be in 1..=60");
    assert!(cfg.epochs >= 1, "need at least one epoch");
    let half = 61 * cfg.kwise;
    if seed.len() < 2 * half {
        return Err(Exhausted {
            capacity: seed.len() as u64,
        });
    }
    let centers_family = seed.slice(0, half).kwise(cfg.kwise)?;
    let radii_family = seed.slice(half, 2 * half).kwise(cfg.kwise)?;
    let shared_bits = (2 * half) as u64;

    let sampler = |phase: u32, epoch: u32, v: usize| -> (bool, u32) {
        let idx = flat_index(&[phase as u64, epoch as u64, v as u64]);
        let n = g.node_count() as u64;
        let log = g.log2_n() as u64;
        // q_i = min(1, 2^i * log / n); the final epoch samples surely.
        let num = (1u64 << epoch.min(62)) * log;
        let sampled = if epoch >= cfg.epochs || num >= n {
            true
        } else {
            centers_family.bernoulli(idx, num, n)
        };
        let radius = radii_family.geometric(idx, cfg.cap);
        (sampled, radius)
    };

    Ok(run_construction(g, cfg, sampler, shared_bits))
}

/// The construction body with an arbitrary `(sampled, radius)` source —
/// Theorem 3.7 reuses it with per-cluster gathered randomness.
pub(crate) fn run_construction(
    g: &Graph,
    cfg: &SharedDecompConfig,
    sampler: impl Fn(u32, u32, usize) -> (bool, u32),
    shared_bits: u64,
) -> SharedOutcome {
    let n = g.node_count();
    let mut alive = vec![true; n];
    let mut labels: Vec<Option<usize>> = vec![None; n];
    let mut phase_of: Vec<Option<u32>> = vec![None; n];
    let mut per_phase = Vec::new();
    let mut meter = CostMeter::default();
    let mut remaining = n;

    for phase in 0..cfg.phases {
        if remaining == 0 {
            break;
        }
        let alive_before = remaining;
        // Nodes out of play for this phase only.
        let mut active = alive.clone();

        for epoch in 1..=cfg.epochs {
            let base = cfg.base_radius(epoch);
            let horizon = base + cfg.cap;
            meter.rounds += 2 * horizon as u64 + 2;

            // Sampled centers among active nodes.
            let centers: Vec<(usize, u32)> = (0..n)
                .filter(|&v| active[v])
                .filter_map(|v| {
                    let (sampled, radius) = sampler(phase, epoch, v);
                    sampled.then_some((v, radius))
                })
                .collect();
            if centers.is_empty() {
                continue;
            }

            // Top-two measures per active node (distances within the active
            // subgraph, as in the Elkin–Neiman analysis).
            let mut top: Vec<Vec<(i64, usize)>> = vec![Vec::new(); n];
            for &(u, x) in &centers {
                let reach = base + x;
                let dist = bfs_distances_within(g, u, &active, reach);
                for v in 0..n {
                    if let Some(d) = dist[v] {
                        let m = (base + x) as i64 - d as i64;
                        debug_assert!(m >= 0);
                        top[v].push((m, u));
                    }
                }
            }

            let mut to_remove: Vec<(usize, Option<usize>)> = Vec::new();
            for v in 0..n {
                if !active[v] || top[v].is_empty() {
                    continue;
                }
                top[v].sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                let (m1, center) = top[v][0];
                let m2 = top[v].get(1).map_or(0, |&(m, _)| m.max(0));
                if m1 - m2 > 1 {
                    to_remove.push((v, Some(center)));
                } else {
                    to_remove.push((v, None)); // set aside for the phase
                }
            }
            for (v, joined) in to_remove {
                active[v] = false;
                if let Some(center) = joined {
                    labels[v] = Some(((phase as usize) << 32) | center);
                    phase_of[v] = Some(phase);
                    alive[v] = false;
                    remaining -= 1;
                }
            }
        }
        per_phase.push((alive_before, alive_before - remaining));
    }

    let survivors: Vec<usize> = (0..n).filter(|&v| alive[v]).collect();
    meter.random_bits = shared_bits;
    let decomposition = if survivors.is_empty() {
        let clustering = Clustering::from_labels(labels);
        let colors: Vec<usize> = (0..clustering.cluster_count())
            .map(|c| phase_of[clustering.members(c)[0]].expect("clustered") as usize) // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
            .collect();
        // audit: allow(panic) -- arity/contiguity established by construction on the preceding lines
        Some(Decomposition::new(clustering, colors).expect("one color per cluster"))
    } else {
        None
    };

    SharedOutcome {
        decomposition,
        survivors,
        shared_bits,
        per_phase,
        meter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_graph::generators::Family;
    use locality_rand::prelude::*;

    fn seeded(cfg: &SharedDecompConfig, s: u64) -> SharedSeed {
        let mut sm = SplitMix64::new(s);
        SharedSeed::from_prng(cfg.seed_bits_needed(), &mut sm)
    }

    #[test]
    fn valid_on_families() {
        let mut p = SplitMix64::new(61);
        for fam in Family::ALL {
            let g = fam.generate(70, &mut p);
            let cfg = SharedDecompConfig::for_graph(&g);
            let out =
                shared_randomness_decomposition(&g, &cfg, &seeded(&cfg, 5)).expect("seed fits");
            let d = out
                .decomposition
                .unwrap_or_else(|| panic!("{}: survivors {:?}", fam.name(), out.survivors));
            let q = d.validate(&g).unwrap();
            assert!(
                q.colors as u32 <= cfg.phases,
                "{}: {} colors",
                fam.name(),
                q.colors
            );
            assert!(
                q.max_diameter <= 2 * cfg.max_cluster_radius(),
                "{}: diameter {}",
                fam.name(),
                q.max_diameter
            );
        }
    }

    #[test]
    fn shared_bits_are_polylog() {
        let g = Graph::grid(10, 10);
        let cfg = SharedDecompConfig::for_graph(&g);
        let out = shared_randomness_decomposition(&g, &cfg, &seeded(&cfg, 7)).unwrap();
        // Budget is ≪ n bits (one private bit per node would already be 100).
        assert_eq!(out.shared_bits, 2 * 61 * cfg.kwise as u64);
        assert_eq!(out.meter.random_bits, out.shared_bits);
        // The whole point: total randomness is polylog, not Ω(n) — for this
        // n the seed is larger in absolute terms, so assert the *scaling*
        // quantity instead: bits depend only on log n, not n.
        let cfg_big = SharedDecompConfig::for_n(100_000);
        let cfg_small = SharedDecompConfig::for_n(100);
        assert!(cfg_big.seed_bits_needed() <= 16 * cfg_small.seed_bits_needed());
    }

    #[test]
    fn too_short_seed_fails() {
        let g = Graph::path(10);
        let cfg = SharedDecompConfig::for_graph(&g);
        let seed = SharedSeed::from_bits(vec![true; 10]);
        assert!(shared_randomness_decomposition(&g, &cfg, &seed).is_err());
    }

    #[test]
    fn reproducible_from_seed() {
        let mut p = SplitMix64::new(63);
        let g = Graph::gnp_connected(60, 0.05, &mut p);
        let cfg = SharedDecompConfig::for_graph(&g);
        let seed = seeded(&cfg, 11);
        let a = shared_randomness_decomposition(&g, &cfg, &seed).unwrap();
        let b = shared_randomness_decomposition(&g, &cfg, &seed).unwrap();
        assert_eq!(a.decomposition, b.decomposition);
        assert_eq!(a.meter.rounds, b.meter.rounds);
    }

    #[test]
    fn per_phase_progress_is_substantial() {
        let mut p = SplitMix64::new(65);
        let g = Graph::gnp_connected(150, 0.02, &mut p);
        let cfg = SharedDecompConfig::for_graph(&g);
        let out = shared_randomness_decomposition(&g, &cfg, &seeded(&cfg, 13)).unwrap();
        let (alive, clustered) = out.per_phase[0];
        assert!(
            clustered * 20 >= alive,
            "first phase clustered {clustered}/{alive}"
        );
        // Cumulatively, a handful of phases clear most of the graph.
        let cleared: usize = out.per_phase.iter().take(6).map(|&(_, c)| c).sum();
        assert!(
            cleared * 2 >= alive,
            "six phases cleared only {cleared}/{alive}"
        );
    }

    #[test]
    fn isolated_nodes_cluster_in_final_epochs() {
        let g = Graph::empty(5);
        let cfg = SharedDecompConfig::for_graph(&g);
        let out = shared_randomness_decomposition(&g, &cfg, &seeded(&cfg, 17)).unwrap();
        let d = out.decomposition.expect("isolated nodes self-cluster");
        assert_eq!(d.validate(&g).unwrap().max_diameter, 0);
    }

    #[test]
    fn rounds_are_polylog_shaped() {
        let mut p = SplitMix64::new(67);
        let g = Graph::gnp_connected(120, 0.03, &mut p);
        let cfg = SharedDecompConfig::for_graph(&g);
        let out = shared_randomness_decomposition(&g, &cfg, &seeded(&cfg, 19)).unwrap();
        let log = g.log2_n() as u64;
        // O(phases * epochs * (R + cap)) with R = O(log^2):
        let bound =
            cfg.phases as u64 * cfg.epochs as u64 * (2 * (cfg.max_cluster_radius() as u64) + 2);
        assert!(out.meter.rounds <= bound);
        assert!(out.meter.rounds >= log); // sanity: not free
    }
}
