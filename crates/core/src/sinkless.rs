//! Sinkless orientation (extension; paper §1.1).
//!
//! Brandt et al. [BFH+16] proved an `Ω(log log n)` randomized lower bound for
//! sinkless orientation; Chang–Kopelowitz–Pettie and Ghaffari–Su pinned its
//! complexity at `Θ(log log n)` randomized vs `Θ(log n)` deterministic — the
//! landmark *exponential separation below `O(log n)`* the paper's
//! introduction situates itself against (and carefully distinguishes from the
//! `P-RLOCAL` vs `P-LOCAL` question). We implement the problem, a randomized
//! repair algorithm, a deterministic cycle-rooted construction, and the
//! radius-1 checker, so the separation's *problem* is available even though
//! its tight algorithms (LLL machinery) are out of scope.
//!
//! An orientation is *sinkless* if every node of degree ≥ 3 has at least one
//! outgoing edge (low-degree nodes are exempt, as usual).

use locality_graph::Graph;
use locality_rand::source::BitSource;
use locality_sim::cost::CostMeter;
use std::collections::VecDeque;

/// Maps an undirected edge `{u, v}` to its index in [`Graph::edges`]
/// enumeration order using the CSR port structure the graph already stores
/// (`Graph::port_of`), instead of rebuilding a tree-map of all edges: the
/// edges before `(u, v)` with `u < v` are every forward edge of smaller
/// sources plus `u`'s forward ports below `v`'s, so
/// `index = fwd_base[u] + port_of(u, v) − lower[u]`.
#[derive(Debug, Clone)]
struct EdgeIndex {
    /// Forward (smaller-endpoint) edges of all nodes before `u`.
    fwd_base: Vec<usize>,
    /// Number of `u`'s neighbors smaller than `u` (a prefix of its sorted
    /// neighbor list).
    lower: Vec<usize>,
}

impl EdgeIndex {
    fn new(g: &Graph) -> Self {
        let n = g.node_count();
        let mut fwd_base = Vec::with_capacity(n);
        let mut lower = Vec::with_capacity(n);
        let mut acc = 0usize;
        for u in 0..n {
            let lt = g.neighbors(u).partition_point(|&w| w < u);
            fwd_base.push(acc);
            lower.push(lt);
            acc += g.degree(u) - lt;
        }
        Self { fwd_base, lower }
    }

    /// Index of `{a, b}` in [`Graph::edges`] order (`O(log deg)`).
    ///
    /// # Panics
    /// Panics if `{a, b}` is not an edge.
    fn id(&self, g: &Graph, a: usize, b: usize) -> usize {
        let (u, v) = (a.min(b), a.max(b));
        // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
        self.fwd_base[u] + g.port_of(u, v).expect("edge exists") - self.lower[u]
    }
}

/// An orientation: for edge index `e` (in [`Graph::edges`] order), `true`
/// means the edge points from the smaller to the larger endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orientation {
    forward: Vec<bool>,
}

impl Orientation {
    /// Build from explicit per-edge directions.
    pub fn new(forward: Vec<bool>) -> Self {
        Self { forward }
    }

    /// Direction of edge `e`: `true` = `min → max`.
    pub fn is_forward(&self, e: usize) -> bool {
        self.forward[e]
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether there are no edges.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Out-degree of every node under this orientation.
    pub fn out_degrees(&self, g: &Graph) -> Vec<usize> {
        let mut out = vec![0usize; g.node_count()];
        for (e, (u, v)) in g.edges().enumerate() {
            if self.forward[e] {
                out[u] += 1;
            } else {
                out[v] += 1;
            }
        }
        out
    }

    /// The sinks: nodes of degree ≥ 3 with no outgoing edge.
    pub fn sinks(&self, g: &Graph) -> Vec<usize> {
        let out = self.out_degrees(g);
        g.nodes()
            .filter(|&v| g.degree(v) >= 3 && out[v] == 0)
            .collect()
    }

    /// Whether the orientation is sinkless.
    pub fn is_sinkless(&self, g: &Graph) -> bool {
        self.sinks(g).is_empty()
    }
}

/// Result of a sinkless-orientation computation.
#[derive(Debug, Clone)]
pub struct SinklessOutcome {
    /// The orientation (check [`Orientation::is_sinkless`]).
    pub orientation: Orientation,
    /// Round/randomness accounting.
    pub meter: CostMeter,
}

/// Randomized orientation + local repair: orient every edge by a fair coin,
/// then for `max_rounds` rounds let every sink flip one uniformly random
/// incident edge. Each repair round costs 2 communication rounds.
///
/// This is the naive `O(log n)`-ish repair dynamics, not the optimal
/// `Θ(log log n)` LLL algorithm — see the module docs.
pub fn randomized_sinkless(
    g: &Graph,
    src: &mut impl BitSource,
    max_rounds: u32,
) -> SinklessOutcome {
    let edge_index = EdgeIndex::new(g);
    let index_of = |a: usize, b: usize| edge_index.id(g, a, b);

    let before = src.bits_drawn();
    let mut forward: Vec<bool> = (0..g.edge_count()).map(|_| src.next_bit()).collect();
    let mut meter = CostMeter::default();

    for _ in 0..max_rounds {
        let orientation = Orientation::new(forward.clone());
        let sinks = orientation.sinks(g);
        if sinks.is_empty() {
            break;
        }
        meter.rounds += 2;
        for v in sinks {
            let nbrs = g.neighbors(v);
            let pick = nbrs[src.uniform_below(nbrs.len() as u64) as usize];
            let e = index_of(v, pick);
            // Flip so the edge leaves v.
            forward[e] = v < pick;
        }
    }
    meter.random_bits = src.bits_drawn() - before;
    SinklessOutcome {
        orientation: Orientation::new(forward),
        meter,
    }
}

/// Deterministic sinkless orientation for graphs whose every component with a
/// degree-≥3 node contains a cycle (true whenever min degree ≥ 2 in that
/// component): find a cycle, orient it consistently, orient everything else
/// toward the cycle (child → parent in a BFS forest rooted at the cycle).
///
/// Returns `None` if some component has a degree-≥3 node but no cycle (then
/// no sinkless orientation exists for that node set... which cannot actually
/// happen: a tree node of degree ≥ 3 can still point at a leaf; concretely we
/// root trees at an arbitrary node and orient child → parent, which leaves
/// only the root sinkful if its degree ≥ 3 — in that case we re-root; a tree
/// always has a leaf, so a sinkless orientation of a tree always exists by
/// orienting everything toward a leaf... except the leaf itself has degree 1
/// and is exempt). Hence this function always succeeds; the `Option` is kept
/// for API symmetry and future constrained variants.
pub fn deterministic_sinkless(g: &Graph) -> Option<SinklessOutcome> {
    let mut forward = vec![true; g.edge_count()];
    let edge_index = EdgeIndex::new(g);
    let orient = |forward: &mut Vec<bool>, from: usize, to: usize| {
        let e = edge_index.id(g, from, to);
        forward[e] = from < to;
    };

    let (labels, k) = locality_graph::components::connected_components(g);
    for comp in 0..k {
        let members: Vec<usize> = g.nodes().filter(|&v| labels[v] == comp).collect();
        // Find a cycle via DFS, if any.
        let cycle = find_cycle(g, &members);
        let roots: Vec<usize> = match &cycle {
            Some(cycle) => {
                // Orient the cycle consistently.
                for w in cycle.windows(2) {
                    orient(&mut forward, w[0], w[1]);
                }
                orient(&mut forward, *cycle.last().expect("nonempty"), cycle[0]); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
                cycle.clone()
            }
            None => {
                // A tree: orient everything toward a leaf.
                let leaf = members
                    .iter()
                    .copied()
                    .find(|&v| g.degree(v) <= 1)
                    .expect("every finite tree has a leaf"); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
                vec![leaf]
            }
        };
        // BFS from the roots; orient non-root edges child -> parent.
        let mut dist = vec![None; g.node_count()];
        let mut queue = VecDeque::new();
        let in_cycle = |v: usize| roots.contains(&v);
        for &r in &roots {
            dist[r] = Some(0u32);
            queue.push_back(r);
        }
        while let Some(u) = queue.pop_front() {
            for &w in g.neighbors(u) {
                if labels[w] == comp && dist[w].is_none() {
                    dist[w] = Some(dist[u].expect("queued") + 1); // audit: allow(panic) -- BFS invariant: every dequeued node was assigned a distance when enqueued
                    if !(in_cycle(u) && in_cycle(w)) {
                        orient(&mut forward, w, u); // child -> parent
                    }
                    queue.push_back(w);
                }
            }
        }
    }

    Some(SinklessOutcome {
        orientation: Orientation::new(forward),
        meter: CostMeter::rounds_only(2 * g.log2_n() as u64),
    })
}

/// A cycle in the component containing `members`, as an ordered node list,
/// if one exists. Robust construction: peel degree-1 nodes to the 2-core;
/// if the core is nonempty, walk never-backtracking until a repeat — every
/// core node has core-degree ≥ 2, so the walk closes a cycle.
fn find_cycle(g: &Graph, members: &[usize]) -> Option<Vec<usize>> {
    let mut in_set = vec![false; g.node_count()];
    let mut degree = vec![0usize; g.node_count()];
    for &v in members {
        in_set[v] = true;
    }
    for &v in members {
        degree[v] = g.neighbors(v).iter().filter(|&&u| in_set[u]).count();
    }
    // Peel to the 2-core.
    let mut queue: VecDeque<usize> = members
        .iter()
        .copied()
        .filter(|&v| degree[v] <= 1)
        .collect();
    let mut alive: Vec<bool> = in_set.clone();
    while let Some(v) = queue.pop_front() {
        if !alive[v] {
            continue;
        }
        alive[v] = false;
        for &u in g.neighbors(v) {
            if alive[u] {
                degree[u] -= 1;
                if degree[u] <= 1 {
                    queue.push_back(u);
                }
            }
        }
    }
    let start = members.iter().copied().find(|&v| alive[v])?;
    // Walk without immediate backtracking until a node repeats.
    let mut seen_at = vec![usize::MAX; g.node_count()];
    let mut path = vec![start];
    seen_at[start] = 0;
    let mut prev = usize::MAX;
    let mut cur = start;
    loop {
        let next = g
            .neighbors(cur)
            .iter()
            .copied()
            .find(|&u| alive[u] && u != prev)
            .expect("2-core degree >= 2 guarantees a forward step"); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
        if seen_at[next] != usize::MAX {
            return Some(path[seen_at[next]..].to_vec());
        }
        seen_at[next] = path.len();
        path.push(next);
        prev = cur;
        cur = next;
    }
}

/// Radius-1 checker (Definition 2.2): degree-≥3 nodes verify they have an
/// outgoing edge.
pub fn check_sinkless(g: &Graph, o: &Orientation) -> crate::checkers::CheckOutcome {
    let out = o.out_degrees(g);
    crate::checkers::CheckOutcome {
        verdicts: g.nodes().map(|v| g.degree(v) < 3 || out[v] > 0).collect(),
        radius: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_rand::prelude::*;

    #[test]
    fn deterministic_on_min_degree_three() {
        let mut p = SplitMix64::new(141);
        for n in [20usize, 60, 120] {
            let g = Graph::random_regular(n, 4, &mut p);
            let out = deterministic_sinkless(&g).expect("always succeeds");
            assert!(
                out.orientation.is_sinkless(&g),
                "n={n}: sinks {:?}",
                out.orientation.sinks(&g)
            );
            assert!(check_sinkless(&g, &out.orientation).accepted());
        }
    }

    #[test]
    fn deterministic_on_trees_and_cliques() {
        // A star has a degree-≥3 center; orienting toward a leaf saves it.
        let g = Graph::star(6);
        let out = deterministic_sinkless(&g).unwrap();
        assert!(out.orientation.is_sinkless(&g));
        // Cliques.
        let g = Graph::complete(5);
        let out = deterministic_sinkless(&g).unwrap();
        assert!(out.orientation.is_sinkless(&g));
        // Balanced tree.
        let g = Graph::balanced_tree(3, 3);
        let out = deterministic_sinkless(&g).unwrap();
        assert!(out.orientation.is_sinkless(&g));
    }

    #[test]
    fn randomized_repair_converges() {
        let mut p = SplitMix64::new(143);
        let g = Graph::random_regular(100, 4, &mut p);
        let mut src = PrngSource::seeded(3);
        let out = randomized_sinkless(&g, &mut src, 200);
        assert!(out.orientation.is_sinkless(&g));
        assert!(out.meter.random_bits > 0);
        // Convergence is fast: far fewer than the cap.
        assert!(out.meter.rounds < 100, "rounds {}", out.meter.rounds);
    }

    #[test]
    fn checker_rejects_a_manufactured_sink() {
        let g = Graph::complete(4); // every node has degree 3
                                    // All edges toward node 0: node 0 has out-degree 0 (its edges all
                                    // come in? edges (0,1),(0,2),(0,3) reversed) -> 0 is a sink... build:
        let forward: Vec<bool> = g
            .edges()
            .map(|(u, _v)| u != 0) // edges touching 0 point INTO 0
            .collect();
        let o = Orientation::new(forward);
        let check = check_sinkless(&g, &o);
        assert!(!check.accepted());
        assert_eq!(check.rejecting_nodes(), vec![0]);
    }

    #[test]
    fn low_degree_nodes_are_exempt() {
        let g = Graph::path(5); // all degrees <= 2
        let o = Orientation::new(vec![false; g.edge_count()]);
        assert!(o.is_sinkless(&g));
        assert!(check_sinkless(&g, &o).accepted());
    }

    #[test]
    fn edge_index_agrees_with_edges_enumeration() {
        let mut p = SplitMix64::new(147);
        for g in [
            Graph::gnp_connected(60, 0.07, &mut p),
            Graph::complete(7),
            Graph::star(9),
            Graph::path(5),
            Graph::empty(4),
        ] {
            let idx = EdgeIndex::new(&g);
            for (e, (u, v)) in g.edges().enumerate() {
                assert_eq!(idx.id(&g, u, v), e);
                assert_eq!(idx.id(&g, v, u), e);
            }
        }
    }

    #[test]
    fn out_degrees_sum_to_edge_count() {
        let mut p = SplitMix64::new(145);
        let g = Graph::gnp_connected(50, 0.08, &mut p);
        let mut src = PrngSource::seeded(5);
        let out = randomized_sinkless(&g, &mut src, 50);
        let total: usize = out.orientation.out_degrees(&g).iter().sum();
        assert_eq!(total, g.edge_count());
    }
}
