//! Error boosting by graph shattering (Theorem 4.2).
//!
//! The paper's two-step booster: (1) run a standard w.h.p. randomized
//! decomposition (Elkin–Neiman); the surviving unclustered set `V̄` is then,
//! with probability `1 − n^{-K}`, free of any `(2t+1)`-separated subset of
//! size `K` (outputs of nodes `2t+1` apart are independent, so `K` joint
//! survivals cost `n^{-2K}` against `\binom{n}{K}` choices). (2) Compute a
//! `(2t+1, O(t·log n))`-ruling set of `V̄`, cluster each survivor with its
//! nearest ruling node (weak diameter `O(t·log n)`, congestion 1), and
//! finish the — now tiny — cluster graph with a *deterministic*
//! decomposition. The total failure probability is governed by the
//! deterministic finisher's capacity, yielding success
//! `1 − n^{-2^{ε·log² T}}` in `T` rounds.
//!
//! The deterministic finisher here is the ball-carving decomposition
//! ([`crate::decomposition::carving`]); DESIGN.md §4 records the [PS92]
//! substitution and the bench reports the `2^{O(√log K)}` formula cost
//! alongside the measured one.

use crate::decomposition::carving::ball_carving_decomposition;
use crate::decomposition::elkin_neiman::{elkin_neiman_partial, ElkinNeimanConfig};
use crate::decomposition::types::Decomposition;
use crate::ruling::{ruling_set, RulingSetParams};
use locality_graph::cluster::{Clustering, LabelCompaction};
use locality_graph::ids::IdAssignment;
use locality_graph::traversal::{bfs_distances, multi_source_bfs};
use locality_graph::Graph;
use locality_rand::source::BitSource;
use locality_sim::cost::CostMeter;

/// Parameters of the boosted construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoostConfig {
    /// The first-stage randomized run (possibly with a tight phase budget, to
    /// make survivors likely — useful for experiments).
    pub en: ElkinNeimanConfig,
    /// Separation parameter `t` (defaults to the EN stage's round count; the
    /// independence radius of its outputs).
    pub t_override: Option<u32>,
}

impl BoostConfig {
    /// Paper-shaped parameters for a graph.
    pub fn for_graph(g: &Graph) -> Self {
        Self {
            en: ElkinNeimanConfig::for_graph(g),
            t_override: None,
        }
    }
}

/// Outcome of the boosted pipeline.
#[derive(Debug, Clone)]
pub struct BoostOutcome {
    /// The final decomposition (weak-diameter, congestion 1 — validate with
    /// [`Decomposition::validate_weak`]). `None` only if the graph is empty
    /// of nodes and clusters could not be formed (never in practice).
    pub decomposition: Option<Decomposition>,
    /// Number of EN survivors handled by the deterministic stage.
    pub survivor_count: usize,
    /// Size of a maximal greedily-built `(2t+1)`-separated subset of the
    /// survivors — the `K` statistic whose tail Theorem 4.2 bounds by
    /// `n^{-K}` (experiment F3).
    pub separated_survivors: usize,
    /// The separation parameter `t` used.
    pub t: u32,
    /// Colors contributed by the EN stage.
    pub en_colors: usize,
    /// Colors contributed by the deterministic stage.
    pub det_colors: usize,
    /// Combined accounting (EN rounds + ruling set + clustering + finisher).
    pub meter: CostMeter,
}

/// Greedy maximal `d`-separated subset of `nodes` (for the `K` statistic).
pub fn max_separated_subset(g: &Graph, nodes: &[usize], d: u32) -> Vec<usize> {
    let mut chosen: Vec<usize> = Vec::new();
    for &v in nodes {
        let far = chosen.iter().all(|&u| {
            // distance in G (full graph)
            match bfs_distances(g, u)[v] {
                Some(x) => x >= d,
                None => true,
            }
        });
        if far {
            chosen.push(v);
        }
    }
    chosen
}

/// Run the Theorem 4.2 pipeline.
pub fn boosted_decomposition(
    g: &Graph,
    ids: &IdAssignment,
    cfg: &BoostConfig,
    src: &mut impl BitSource,
) -> BoostOutcome {
    let en = elkin_neiman_partial(g, ids, &cfg.en, src);
    let mut meter = en.meter;
    let t = cfg.t_override.unwrap_or((en.meter.rounds as u32).max(1));

    // Base labels/colors from the EN stage.
    let mut final_label: Vec<Option<usize>> = vec![None; g.node_count()];
    let mut cluster_color: Vec<usize> = Vec::new();
    {
        // Compact EN labels into cluster ids with the flat sort-based remap
        // ([`LabelCompaction`]) in place of a tree-map; a cluster's color is
        // its EN phase, read off the key in id order.
        let compaction = LabelCompaction::new(
            g.nodes()
                .filter_map(|v| en.labels[v].map(|key| (key, v)))
                .collect(),
        );
        cluster_color.extend(compaction.keys().iter().map(|key| key.0 as usize));
        for v in g.nodes() {
            if let Some(key) = en.labels[v] {
                // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
                final_label[v] = Some(compaction.id_of(&key).expect("key present"));
            }
        }
    }
    let en_colors = {
        let mut c: Vec<usize> = cluster_color.clone();
        c.sort_unstable();
        c.dedup();
        c.len()
    };
    let en_color_bound = cfg.en.phases as usize;

    let survivor_count = en.survivors.len();
    let separation = 2 * t + 1;
    let separated = max_separated_subset(g, &en.survivors, separation);

    let mut det_colors = 0usize;
    if survivor_count > 0 {
        // (2t+1, (2t+1)·log n)-ruling set of the survivors.
        let ruling = ruling_set(g, ids, &en.survivors, RulingSetParams { alpha: separation });
        meter += ruling.meter;

        // Each survivor joins its nearest ruling node (paths may route
        // through clustered nodes — weak diameter, congestion 1). Node ids
        // are dense `0..n`, so the distinct-center set is a sort + dedup of
        // a flat `Vec`, not a tree-map.
        let (_, nearest) = multi_source_bfs(g, &ruling.set);
        let mut centers: Vec<usize> = en
            .survivors
            .iter()
            .map(|&v| nearest[v].expect("survivors reach their own ruling set")) // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
            .collect();
        centers.sort_unstable();
        centers.dedup();
        let index_of = |c: usize| centers.binary_search(&c).expect("present"); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
        meter.rounds += 2 * ruling.beta as u64; // BFS growth + report

        // Cluster graph: survivor clusters adjacent when members touch in G.
        let mut cg_edges: Vec<(usize, usize)> = Vec::new();
        for &v in &en.survivors {
            let cv = index_of(nearest[v].expect("assigned")); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
            for &u in g.neighbors(v) {
                if let Some(cu) = nearest[u].filter(|_| en.survivors.binary_search(&u).is_ok()) {
                    let cu = index_of(cu);
                    if cu != cv {
                        cg_edges.push((cv.min(cu), cv.max(cu)));
                    }
                }
            }
        }
        let cg = Graph::from_edges(centers.len(), cg_edges).expect("cluster ids in range"); // audit: allow(panic) -- generator emits in-range edges by construction

        // Deterministic finisher on the (tiny) cluster graph.
        let order: Vec<usize> = (0..cg.node_count()).collect();
        let det = ball_carving_decomposition(&cg, &order);
        det_colors = det.colors;
        meter.rounds += det.sequential_rounds * (2 * ruling.beta as u64 + 1).max(1);

        // Lift: survivor v gets cluster (EN clusters ∪ det clusters) with a
        // disjoint color namespace starting after the EN phase colors.
        let det_clustering = det.decomposition.clustering();
        let base_cluster = cluster_color.len();
        for det_cluster in 0..det_clustering.cluster_count() {
            cluster_color.push(en_color_bound + det.decomposition.color_of_cluster(det_cluster));
        }
        for &v in &en.survivors {
            let cv = index_of(nearest[v].expect("assigned")); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
            let det_cluster = det_clustering.cluster_of(cv).expect("total"); // audit: allow(panic) -- clustering is total over clustered nodes, validated where it was built
            final_label[v] = Some(base_cluster + det_cluster);
        }
    }

    let decomposition = {
        let clustering = Clustering::from_labels(final_label.clone());
        let colors: Vec<usize> = (0..clustering.cluster_count())
            .map(|c| {
                let v = clustering.members(c)[0];
                cluster_color[final_label[v].expect("labeled")] // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
            })
            .collect();
        Decomposition::new(clustering, colors).ok()
    };

    BoostOutcome {
        decomposition,
        survivor_count,
        separated_survivors: separated.len(),
        t,
        en_colors,
        det_colors,
        meter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_graph::generators::Family;
    use locality_rand::prelude::*;

    #[test]
    fn boost_with_full_budget_rarely_needs_det_stage() {
        let mut p = SplitMix64::new(91);
        let g = Graph::gnp_connected(120, 0.03, &mut p);
        let ids = IdAssignment::sequential(120);
        let cfg = BoostConfig::for_graph(&g);
        let mut src = PrngSource::seeded(3);
        let out = boosted_decomposition(&g, &ids, &cfg, &mut src);
        let d = out.decomposition.expect("always completes");
        d.validate_weak(&g).unwrap();
        assert_eq!(out.survivor_count, 0);
        assert_eq!(out.det_colors, 0);
    }

    #[test]
    fn boost_with_tight_budget_finishes_deterministically() {
        // Starve the EN stage so survivors exist, then verify the pipeline
        // still produces a valid (weak-diameter) decomposition.
        let mut p = SplitMix64::new(93);
        for fam in [Family::Cycle, Family::Grid, Family::GnpSparse] {
            let g = fam.generate(120, &mut p);
            let n = g.node_count();
            let ids = IdAssignment::sequential(n);
            let cfg = BoostConfig {
                en: ElkinNeimanConfig { phases: 1, cap: 8 },
                t_override: None,
            };
            let mut src = PrngSource::seeded(7);
            let out = boosted_decomposition(&g, &ids, &cfg, &mut src);
            let d = out.decomposition.expect("completes");
            let q = d
                .validate_weak(&g)
                .unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
            assert!(out.survivor_count > 0, "{}: expected survivors", fam.name());
            assert!(out.det_colors > 0);
            assert!(q.colors <= out.en_colors + out.det_colors + 1);
        }
    }

    #[test]
    fn separated_statistic_is_small_for_whp_run() {
        // With the full budget the survivor set is empty, so K = 0.
        let mut p = SplitMix64::new(95);
        let g = Graph::gnp_connected(100, 0.04, &mut p);
        let ids = IdAssignment::sequential(100);
        let cfg = BoostConfig::for_graph(&g);
        let mut src = PrngSource::seeded(11);
        let out = boosted_decomposition(&g, &ids, &cfg, &mut src);
        assert_eq!(out.separated_survivors, 0);
    }

    #[test]
    fn max_separated_subset_properties() {
        let g = Graph::path(10);
        let all: Vec<usize> = (0..10).collect();
        let s = max_separated_subset(&g, &all, 3);
        // Greedy from 0: {0, 3, 6, 9}.
        assert_eq!(s, vec![0, 3, 6, 9]);
        let s1 = max_separated_subset(&g, &all, 100);
        assert_eq!(s1, vec![0]);
        let empty = max_separated_subset(&g, &[], 2);
        assert!(empty.is_empty());
    }

    #[test]
    fn survivors_in_disconnected_graph() {
        let g = Graph::disjoint_union(&[Graph::cycle(20), Graph::cycle(20)]);
        let ids = IdAssignment::sequential(40);
        let cfg = BoostConfig {
            en: ElkinNeimanConfig { phases: 1, cap: 6 },
            t_override: Some(3),
        };
        let mut src = PrngSource::seeded(13);
        let out = boosted_decomposition(&g, &ids, &cfg, &mut src);
        let d = out.decomposition.expect("completes");
        d.validate_weak(&g).unwrap();
    }
}
