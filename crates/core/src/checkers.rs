//! Local checkability (Definition 2.2).
//!
//! A problem is `d(n)`-locally checkable if a deterministic `d(n)`-round
//! LOCAL algorithm lets every node output yes/no such that *all* nodes say
//! yes iff the solution is globally correct. Every checker here returns the
//! per-node verdict vector together with the radius it used, making the
//! definition mechanical: tests mutate valid solutions and assert that some
//! node within the prescribed radius notices.

use crate::decomposition::types::{DecompError, Decomposition};
use crate::splitting::SplittingInstance;
use locality_graph::metrics::induced_diameter;
use locality_graph::traversal::bounded_bfs_distances;
use locality_graph::Graph;
use std::fmt;

/// The violation class of a [`VerifyError`].
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// The output vector's length differs from the node count.
    WrongLength,
    /// A color lies outside the allowed palette.
    OutsidePalette,
    /// An edge's endpoints share a color.
    MonochromaticEdge,
    /// Two adjacent nodes are both in the independent set.
    AdjacentInSet,
    /// A node is neither in the set nor dominated by a set neighbor.
    Undominated,
    /// The artifact is not a valid decomposition (see the wrapped
    /// [`DecompError`] message in `detail`).
    Decomposition,
    /// The set is not a valid (α, β)-ruling set: nodes too close, a node
    /// too far, or a node that cannot reach the set.
    RulingSet,
}

/// Structured verifier failure: the first violation a solution verifier
/// found, with the node it is visible at (when the violation is localized),
/// its class, and a human-readable message.
///
/// [`VerifyError`] is the only error type on the verify path — every
/// verifier in the crate (`verify_mis`, `verify_coloring`,
/// `verify_ruling_set`, the decomposition validators through their `From`
/// conversion) returns it. Render it with [`Display`](fmt::Display).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// A node at which the violation is visible, when localized (length
    /// mismatches, for example, are global).
    pub node: Option<usize>,
    /// The violation class.
    pub kind: VerifyErrorKind,
    /// Human-readable description.
    pub detail: String,
}

impl VerifyError {
    /// Assemble a verifier failure.
    pub fn new(kind: VerifyErrorKind, node: Option<usize>, detail: impl Into<String>) -> Self {
        Self {
            node,
            kind,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

impl std::error::Error for VerifyError {}

/// Decomposition validation failures verify-report as
/// [`VerifyErrorKind::Decomposition`], localized where the variant names a
/// node.
impl From<DecompError> for VerifyError {
    fn from(e: DecompError) -> Self {
        let node = match e {
            DecompError::UnclusteredNode { node } => Some(node),
            _ => None,
        };
        Self::new(VerifyErrorKind::Decomposition, node, e.to_string())
    }
}

/// A local check: per-node verdicts plus the radius the checker needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Per-node yes/no.
    pub verdicts: Vec<bool>,
    /// The checking radius `d` (rounds of the checking algorithm).
    pub radius: u32,
}

impl CheckOutcome {
    /// Definition 2.2's acceptance: all nodes say yes.
    pub fn accepted(&self) -> bool {
        self.verdicts.iter().all(|&v| v)
    }

    /// Nodes that said no.
    pub fn rejecting_nodes(&self) -> Vec<usize> {
        (0..self.verdicts.len())
            .filter(|&v| !self.verdicts[v])
            .collect()
    }
}

/// Radius-1 checker for proper coloring: node `v` says yes iff no neighbor
/// shares its color and its color is inside the palette.
pub fn check_proper_coloring(g: &Graph, colors: &[usize], palette: usize) -> CheckOutcome {
    assert_eq!(colors.len(), g.node_count(), "one color per node");
    let verdicts = g
        .nodes()
        .map(|v| colors[v] < palette && g.neighbors(v).iter().all(|&u| colors[u] != colors[v]))
        .collect();
    CheckOutcome {
        verdicts,
        radius: 1,
    }
}

/// Radius-1 checker for MIS: `v` says yes iff (in ⇒ no neighbor in) and
/// (out ⇒ some neighbor in).
pub fn check_mis(g: &Graph, in_mis: &[bool]) -> CheckOutcome {
    assert_eq!(in_mis.len(), g.node_count(), "one flag per node");
    let verdicts = g
        .nodes()
        .map(|v| {
            if in_mis[v] {
                g.neighbors(v).iter().all(|&u| !in_mis[u])
            } else {
                g.neighbors(v).iter().any(|&u| in_mis[u])
            }
        })
        .collect();
    CheckOutcome {
        verdicts,
        radius: 1,
    }
}

/// Radius-1 checker for splitting: `U`-node `u` says yes iff it sees both
/// colors (`V`-nodes always say yes). Verdicts are indexed `U` first, then
/// `V`.
pub fn check_splitting(h: &SplittingInstance, colors: &[bool]) -> CheckOutcome {
    let failures = h.failures(colors);
    let verdicts = (0..h.u_count())
        .map(|u| !failures.contains(&u))
        .chain(std::iter::repeat(true).take(h.v_count()))
        .collect();
    CheckOutcome {
        verdicts,
        radius: 1,
    }
}

/// Checker for a `(d_bound, c_bound)`-decomposition with radius
/// `d_bound + 1`: node `v` gathers its `(d_bound+1)`-ball and verifies that
/// (i) it is clustered, (ii) its whole cluster lies inside the ball and is
/// connected with induced diameter ≤ `d_bound`, (iii) its cluster's color is
/// `< c_bound` and differs from every adjacent cluster's.
pub fn check_decomposition(
    g: &Graph,
    d: &Decomposition,
    d_bound: u32,
    c_bound: usize,
) -> CheckOutcome {
    let radius = d_bound + 1;
    let clustering = d.clustering();
    let verdicts = g
        .nodes()
        .map(|v| {
            let Some(c) = clustering.cluster_of(v) else {
                return false;
            };
            if d.color_of_cluster(c) >= c_bound {
                return false;
            }
            // The cluster must fit in the ball.
            let ball = bounded_bfs_distances(g, v, radius);
            let members = clustering.members(c);
            if members.iter().any(|&u| ball[u].is_none()) {
                return false;
            }
            match induced_diameter(g, members) {
                Some(diam) if diam <= d_bound => {}
                _ => return false,
            }
            // Adjacent clusters differ in color.
            g.neighbors(v)
                .iter()
                .all(|&u| match clustering.cluster_of(u) {
                    Some(cu) if cu != c => d.color_of_cluster(cu) != d.color_of_cluster(c),
                    Some(_) => true,
                    None => false,
                })
        })
        .collect();
    CheckOutcome { verdicts, radius }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::carving::ball_carving_decomposition;
    use crate::mis::luby;
    use locality_rand::prelude::*;

    #[test]
    fn coloring_checker_soundness_and_completeness() {
        let g = Graph::cycle(8);
        let good = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert!(check_proper_coloring(&g, &good, 2).accepted());
        // Mutate: some node within radius 1 must notice.
        let mut bad = good.clone();
        bad[3] = 0;
        let out = check_proper_coloring(&g, &bad, 2);
        assert!(!out.accepted());
        let rejecting = out.rejecting_nodes();
        assert!(rejecting.iter().all(|&v| [2, 3, 4].contains(&v)));
        // Out-of-palette.
        let mut oop = good;
        oop[0] = 7;
        assert!(!check_proper_coloring(&g, &oop, 2).accepted());
    }

    #[test]
    fn mis_checker_soundness() {
        let mut p = SplitMix64::new(131);
        let g = Graph::gnp_connected(60, 0.06, &mut p);
        let out = luby(&g, &mut PrngSource::seeded(1));
        assert!(check_mis(&g, &out.in_mis).accepted());
        // Remove an MIS node: it or a neighbor must reject.
        let mut bad = out.in_mis.clone();
        let v = bad.iter().position(|&x| x).expect("nonempty MIS");
        bad[v] = false;
        assert!(!check_mis(&g, &bad).accepted());
        // Add an adjacent node: both endpoints reject.
        let mut bad2 = out.in_mis.clone();
        let w = g
            .nodes()
            .find(|&w| !bad2[w] && g.neighbors(w).iter().any(|&u| bad2[u]))
            .expect("some dominated node");
        bad2[w] = true;
        assert!(!check_mis(&g, &bad2).accepted());
    }

    #[test]
    fn splitting_checker() {
        let h = SplittingInstance::new(3, vec![vec![0, 1], vec![1, 2]]).unwrap();
        assert!(check_splitting(&h, &[true, false, true]).accepted());
        let out = check_splitting(&h, &[true, true, true]);
        assert!(!out.accepted());
        assert_eq!(out.rejecting_nodes(), vec![0, 1]);
        assert_eq!(out.verdicts.len(), 5); // 2 U-nodes + 3 V-nodes
    }

    #[test]
    fn decomposition_checker_accepts_valid() {
        let mut p = SplitMix64::new(133);
        let g = Graph::gnp_connected(80, 0.04, &mut p);
        let order: Vec<usize> = (0..80).collect();
        let r = ball_carving_decomposition(&g, &order);
        let q = r.decomposition.validate(&g).unwrap();
        let out = check_decomposition(&g, &r.decomposition, q.max_diameter, q.colors);
        assert!(out.accepted());
        assert_eq!(out.radius, q.max_diameter + 1);
    }

    #[test]
    fn decomposition_checker_rejects_violations() {
        let g = Graph::path(6);
        // Two clusters, adjacent, same color.
        let clustering = locality_graph::cluster::Clustering::from_assignment(vec![
            Some(0),
            Some(0),
            Some(0),
            Some(1),
            Some(1),
            Some(1),
        ])
        .unwrap();
        let d = Decomposition::new(clustering, vec![0, 0]).unwrap();
        let out = check_decomposition(&g, &d, 2, 4);
        assert!(!out.accepted());
        // The violation is visible at the boundary nodes 2 and 3.
        assert!(out.rejecting_nodes().contains(&2));
        assert!(out.rejecting_nodes().contains(&3));
        // A diameter bound that is too tight also rejects.
        let clustering2 = locality_graph::cluster::Clustering::from_assignment(vec![
            Some(0),
            Some(0),
            Some(0),
            Some(1),
            Some(1),
            Some(1),
        ])
        .unwrap();
        let d2 = Decomposition::new(clustering2, vec![0, 1]).unwrap();
        assert!(check_decomposition(&g, &d2, 2, 4).accepted());
        assert!(!check_decomposition(&g, &d2, 1, 4).accepted());
        // A color bound that is too tight rejects.
        assert!(!check_decomposition(&g, &d2, 2, 1).accepted());
    }
}
