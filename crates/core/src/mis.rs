//! Maximal independent set — the problem behind Linial's question (§1).
//!
//! Two algorithms:
//! - [`luby`]: the classic randomized `O(log n)`-round algorithm
//!   [Lub86, ABI86] (random priorities, local minima join);
//! - [`via_decomposition`]: the deterministic solver that consumes a network
//!   decomposition — the mechanism that makes decomposition complete for
//!   `P-RLOCAL` vs `P-LOCAL`: process color classes in order; within a color,
//!   every cluster (same-color clusters are non-adjacent, so this is
//!   parallel) gathers its topology plus its frontier's already-fixed
//!   outputs in `O(diameter)` rounds and extends greedily.

use crate::decomposition::types::Decomposition;
use locality_graph::Graph;
use locality_rand::source::BitSource;
use locality_sim::cost::CostMeter;

/// Verify the MIS property; returns the first violation as text.
pub fn verify_mis(g: &Graph, in_mis: &[bool]) -> Result<(), String> {
    if in_mis.len() != g.node_count() {
        return Err("wrong vector length".into());
    }
    for (u, v) in g.edges() {
        if in_mis[u] && in_mis[v] {
            return Err(format!("adjacent nodes {u},{v} both in MIS"));
        }
    }
    for v in g.nodes() {
        if !in_mis[v] && !g.neighbors(v).iter().any(|&u| in_mis[u]) {
            return Err(format!("node {v} is undominated"));
        }
    }
    Ok(())
}

/// Result of an MIS computation.
#[derive(Debug, Clone)]
pub struct MisOutcome {
    /// Membership vector.
    pub in_mis: Vec<bool>,
    /// Round/randomness accounting.
    pub meter: CostMeter,
}

/// Luby's algorithm: each iteration, every alive node draws a
/// `4·⌈log n⌉`-bit priority; local minima (ties by node index) join the MIS
/// and are removed together with their neighbors. Each iteration costs two
/// communication rounds.
///
/// # Example
/// ```
/// use locality_core::mis::{luby, verify_mis};
/// use locality_graph::prelude::*;
/// use locality_rand::prelude::*;
///
/// let g = Graph::grid(8, 8);
/// let out = luby(&g, &mut PrngSource::seeded(1));
/// verify_mis(&g, &out.in_mis).unwrap();
/// ```
pub fn luby(g: &Graph, src: &mut impl BitSource) -> MisOutcome {
    let n = g.node_count();
    let prio_bits = 4 * g.log2_n();
    let mut alive = vec![true; n];
    let mut in_mis = vec![false; n];
    let mut meter = CostMeter::default();
    let mut remaining: usize = n;

    while remaining > 0 {
        meter.rounds += 2;
        let before = src.bits_drawn();
        let prio: Vec<u64> = (0..n)
            .map(|v| {
                if alive[v] {
                    src.next_bits(prio_bits).expect("unbounded source")
                } else {
                    u64::MAX
                }
            })
            .collect();
        meter.random_bits += src.bits_drawn() - before;

        let joins: Vec<usize> = (0..n)
            .filter(|&v| {
                alive[v]
                    && g.neighbors(v)
                        .iter()
                        .all(|&u| !alive[u] || (prio[v], v) < (prio[u], u))
            })
            .collect();
        for &v in &joins {
            in_mis[v] = true;
            alive[v] = false;
            remaining -= 1;
            for &u in g.neighbors(v) {
                if alive[u] {
                    alive[u] = false;
                    remaining -= 1;
                }
            }
        }
    }
    MisOutcome { in_mis, meter }
}

/// Deterministic MIS from a network decomposition: color classes in
/// ascending color order; within a class, each cluster solves greedily
/// (members in index order) against the already-fixed outside outputs.
/// Rounds charged: per color, `2·(max cluster diameter of that color) + 2`
/// (gather + decide + report), as in the standard completeness argument.
///
/// # Panics
/// Panics if `d` is not a valid decomposition of `g` (checked).
pub fn via_decomposition(g: &Graph, d: &Decomposition) -> MisOutcome {
    let quality = d.validate(g).expect("decomposition must be valid");
    let _ = quality;
    let clustering = d.clustering();
    let mut colors: Vec<usize> = (0..clustering.cluster_count())
        .map(|c| d.color_of_cluster(c))
        .collect();
    colors.sort_unstable();
    colors.dedup();

    let n = g.node_count();
    let mut in_mis = vec![false; n];
    let mut decided = vec![false; n];
    let mut meter = CostMeter::default();

    for &color in &colors {
        let mut color_diam = 0u64;
        for c in 0..clustering.cluster_count() {
            if d.color_of_cluster(c) != color {
                continue;
            }
            let members = clustering.members(c);
            color_diam = color_diam.max(
                locality_graph::metrics::induced_diameter(g, members)
                    .expect("clusters are connected") as u64,
            );
            for &v in members {
                let blocked = g.neighbors(v).iter().any(|&u| decided[u] && in_mis[u]);
                if !blocked {
                    in_mis[v] = true;
                }
                decided[v] = true;
            }
        }
        meter.rounds += 2 * color_diam + 2;
    }
    debug_assert!(decided.iter().all(|&x| x));
    MisOutcome { in_mis, meter }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::carving::ball_carving_decomposition;
    use locality_graph::generators::Family;
    use locality_rand::prelude::*;

    #[test]
    fn luby_valid_on_families() {
        let mut p = SplitMix64::new(101);
        for fam in Family::ALL {
            let g = fam.generate(150, &mut p);
            let mut src = PrngSource::seeded(fam as u64 + 1);
            let out = luby(&g, &mut src);
            verify_mis(&g, &out.in_mis).unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
            assert!(out.meter.random_bits > 0);
        }
    }

    #[test]
    fn luby_rounds_are_logarithmic() {
        let mut p = SplitMix64::new(103);
        let g = Graph::gnp_connected(500, 0.01, &mut p);
        let mut src = PrngSource::seeded(5);
        let out = luby(&g, &mut src);
        // 2 rounds per iteration; whp O(log n) iterations.
        assert!(
            out.meter.rounds <= 8 * g.log2_n() as u64,
            "rounds {}",
            out.meter.rounds
        );
    }

    #[test]
    fn via_decomposition_valid_and_deterministic() {
        let mut p = SplitMix64::new(105);
        for fam in Family::ALL {
            let g = fam.generate(100, &mut p);
            let order: Vec<usize> = (0..g.node_count()).collect();
            let d = ball_carving_decomposition(&g, &order).decomposition;
            let a = via_decomposition(&g, &d);
            let b = via_decomposition(&g, &d);
            verify_mis(&g, &a.in_mis).unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
            assert_eq!(a.in_mis, b.in_mis);
            assert_eq!(a.meter.random_bits, 0, "deterministic solver used bits");
        }
    }

    #[test]
    fn via_decomposition_round_shape() {
        // Rounds ≈ Σ_colors O(diam) = O(log n · log n) for the carving
        // decomposition.
        let mut p = SplitMix64::new(107);
        let g = Graph::gnp_connected(200, 0.02, &mut p);
        let order: Vec<usize> = (0..200).collect();
        let d = ball_carving_decomposition(&g, &order).decomposition;
        let out = via_decomposition(&g, &d);
        let log = g.log2_n() as u64;
        assert!(
            out.meter.rounds <= 4 * log * (2 * log + 2) + 2 * log,
            "rounds {}",
            out.meter.rounds
        );
    }

    #[test]
    fn empty_and_singleton() {
        let g = Graph::empty(1);
        let out = luby(&g, &mut PrngSource::seeded(1));
        assert_eq!(out.in_mis, vec![true]);
        let g0 = Graph::empty(0);
        let out0 = luby(&g0, &mut PrngSource::seeded(1));
        assert!(out0.in_mis.is_empty());
    }

    #[test]
    fn verify_rejects_bad_sets() {
        let g = Graph::path(3);
        assert!(verify_mis(&g, &[true, true, false]).is_err()); // adjacent
        assert!(verify_mis(&g, &[false, false, false]).is_err()); // undominated
        assert!(verify_mis(&g, &[true, false, true]).is_ok());
        assert!(verify_mis(&g, &[true, false]).is_err()); // wrong length
    }
}
