//! Maximal independent set — the problem behind Linial's question (§1).
//!
//! Two algorithms:
//! - [`luby`]: the classic randomized `O(log n)`-round algorithm
//!   [Lub86, ABI86] (random priorities, local minima join);
//! - [`via_decomposition`]: the deterministic solver that consumes a network
//!   decomposition — the mechanism that makes decomposition complete for
//!   `P-RLOCAL` vs `P-LOCAL`: process color classes in order; within a color,
//!   every cluster (same-color clusters are non-adjacent, so this is
//!   parallel) gathers its topology plus its frontier's already-fixed
//!   outputs in `O(diameter)` rounds and extends greedily.

use crate::algorithm::{node_seed, run_congest_protocol, AlgorithmRun, LocalAlgorithm};
use crate::checkers::{VerifyError, VerifyErrorKind};
use crate::decomposition::types::Decomposition;
use locality_graph::ids::IdAssignment;
use locality_graph::Graph;
use locality_rand::source::{BitSource, PrngSource};
use locality_sim::cost::CostMeter;
use locality_sim::executor::{BatchProtocol, Control, Inbox, Outlet};
use locality_sim::node::NodeContext;
use locality_sim::wire::{Compact, WireSize};

/// Verify the MIS property; returns the first violation as a typed
/// [`VerifyError`] — match on its `kind`/`node` or render via `Display`.
pub fn verify_mis(g: &Graph, in_mis: &[bool]) -> Result<(), VerifyError> {
    if in_mis.len() != g.node_count() {
        return Err(VerifyError::new(
            VerifyErrorKind::WrongLength,
            None,
            "wrong vector length",
        ));
    }
    for (u, v) in g.edges() {
        if in_mis[u] && in_mis[v] {
            return Err(VerifyError::new(
                VerifyErrorKind::AdjacentInSet,
                Some(u),
                format!("adjacent nodes {u},{v} both in MIS"),
            ));
        }
    }
    for v in g.nodes() {
        if !in_mis[v] && !g.neighbors(v).iter().any(|&u| in_mis[u]) {
            return Err(VerifyError::new(
                VerifyErrorKind::Undominated,
                Some(v),
                format!("node {v} is undominated"),
            ));
        }
    }
    Ok(())
}

/// Result of an MIS computation.
#[derive(Debug, Clone)]
pub struct MisOutcome {
    /// Membership vector.
    pub in_mis: Vec<bool>,
    /// Round/randomness accounting.
    pub meter: CostMeter,
}

/// Luby's algorithm: each iteration, every alive node draws a
/// `4·⌈log n⌉`-bit priority; local minima (ties by node index) join the MIS
/// and are removed together with their neighbors. Each iteration costs two
/// communication rounds.
///
/// # Example
/// ```
/// use locality_core::mis::{luby, verify_mis};
/// use locality_graph::prelude::*;
/// use locality_rand::prelude::*;
///
/// let g = Graph::grid(8, 8);
/// let out = luby(&g, &mut PrngSource::seeded(1));
/// verify_mis(&g, &out.in_mis).unwrap();
/// ```
pub fn luby(g: &Graph, src: &mut impl BitSource) -> MisOutcome {
    let n = g.node_count();
    let prio_bits = 4 * g.log2_n();
    let mut alive = vec![true; n];
    let mut in_mis = vec![false; n];
    let mut meter = CostMeter::default();
    let mut remaining: usize = n;

    // Explicit alive-node worklist (kept in ascending order, so the draw
    // sequence — and therefore every output bit — is identical to scanning
    // `0..n` and skipping dead nodes): each iteration costs
    // `O(alive + their edges)`, not `O(n + m)`, which matters because the
    // alive set decays geometrically while the iteration count is `O(log n)`.
    let mut worklist: Vec<usize> = (0..n).collect();
    let mut prio = vec![0u64; n];

    while remaining > 0 {
        meter.rounds += 2;
        let before = src.bits_drawn();
        for &v in &worklist {
            prio[v] = src.next_bits(prio_bits).expect("unbounded source"); // audit: allow(panic) -- the seed source is constructed unbounded a few lines up
        }
        meter.random_bits += src.bits_drawn() - before;

        let joins: Vec<usize> = worklist
            .iter()
            .copied()
            .filter(|&v| {
                g.neighbors(v)
                    .iter()
                    .all(|&u| !alive[u] || (prio[v], v) < (prio[u], u))
            })
            .collect();
        for &v in &joins {
            in_mis[v] = true;
            alive[v] = false;
            remaining -= 1;
            for &u in g.neighbors(v) {
                if alive[u] {
                    alive[u] = false;
                    remaining -= 1;
                }
            }
        }
        worklist.retain(|&v| alive[v]);
    }
    MisOutcome { in_mis, meter }
}

/// Deterministic MIS from a network decomposition: color classes in
/// ascending color order; within a class, each cluster solves greedily
/// (members in index order) against the already-fixed outside outputs.
/// Rounds charged: per color, `2·(max cluster diameter of that color) + 2`
/// (gather + decide + report), as in the standard completeness argument.
///
/// Same-color clusters are non-adjacent (that is the decomposition's
/// properness invariant, validated here), so a color class's clusters are
/// processed in parallel over fixed cluster buckets — exactly the
/// parallelism the completeness theorem grants — with outputs bit-identical
/// for every thread count. Equivalent to the retained
/// [`reference_via_decomposition`], which differential tests pin.
///
/// # Panics
/// Panics if `d` is not a valid decomposition of `g` (checked).
pub fn via_decomposition(g: &Graph, d: &Decomposition) -> MisOutcome {
    via_decomposition_threads(g, d, 0)
}

/// [`via_decomposition`] with an explicit thread count (`0` = all available).
/// Under the `determinism-checks` cargo feature each call re-runs
/// single-threaded and asserts bit-identical output.
///
/// # Panics
/// Panics if `d` is not a valid decomposition of `g` (checked).
pub fn via_decomposition_threads(g: &Graph, d: &Decomposition, threads: usize) -> MisOutcome {
    let result = mis_consume(g, d, crate::consume::resolve_threads(threads));
    #[cfg(feature = "determinism-checks")]
    {
        let sequential = mis_consume(g, d, 1);
        assert_eq!(
            result.in_mis, sequential.in_mis,
            "determinism check: parallel MIS consumer diverged from sequential"
        );
        assert_eq!(result.meter, sequential.meter);
    }
    result
}

fn mis_consume(g: &Graph, d: &Decomposition, threads: usize) -> MisOutcome {
    let plan = crate::consume::plan_consumer(g, d).expect("decomposition must be valid"); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
    consume_with_plan(g, d, &plan, threads)
}

/// The plan-reusing form of the deterministic consumer: callers that already
/// hold a validated [`ConsumerPlan`](crate::consume::ConsumerPlan) (the
/// serving [`Session`](crate::serve::Session), which validates once and
/// amortizes it across requests) skip re-validating the decomposition.
/// Bit-identical to [`via_decomposition_threads`] by construction.
pub(crate) fn consume_with_plan(
    g: &Graph,
    d: &Decomposition,
    plan: &crate::consume::ConsumerPlan,
    threads: usize,
) -> MisOutcome {
    let clustering = d.clustering();
    let n = g.node_count();
    let mut in_mis = vec![false; n];
    let mut decided = vec![false; n];
    let mut meter = CostMeter::default();

    for (_, clusters) in &plan.classes {
        let color_diam = clusters
            .iter()
            .map(|&c| u64::from(plan.diam[c as usize]))
            .max()
            .unwrap_or(0);
        let members_total: usize = clusters
            .iter()
            .map(|&c| clustering.members(c as usize).len())
            .sum();
        let parallel = members_total >= crate::consume::PARALLEL_MIN_MEMBERS;
        let staged = crate::consume::process_clusters(
            clusters,
            threads,
            parallel,
            || (),
            &|(), c, out: &mut Vec<(u32, bool)>| {
                // Greedy over the cluster's members in index order. Earlier
                // members of *this* cluster live in `out[base..]` (sorted —
                // members ascend); everything else relevant is in the frozen
                // `decided`/`in_mis` state of previous colors, because
                // same-color clusters are non-adjacent.
                let base = out.len();
                for &v in clustering.members(c as usize) {
                    let blocked = g.neighbors(v).iter().any(|&u| {
                        if decided[u] && in_mis[u] {
                            return true;
                        }
                        matches!(
                            out[base..].binary_search_by_key(&(u as u32), |&(w, _)| w),
                            Ok(i) if out[base + i].1
                        )
                    });
                    out.push((v as u32, !blocked));
                }
            },
        );
        for bucket in staged {
            for (v, joined) in bucket {
                in_mis[v as usize] = joined;
                decided[v as usize] = true;
            }
        }
        meter.rounds += 2 * color_diam + 2;
    }
    debug_assert!(decided.iter().all(|&x| x));
    MisOutcome { in_mis, meter }
}

/// The pre-optimization deterministic consumer, retained as the differential
/// oracle for [`via_decomposition`]: sequential cluster sweep with a fresh
/// full-graph induced-subgraph diameter computation per cluster (the
/// pre-rewrite validator's cost, via the retained reference validate) —
/// `O(n)`-ish work per cluster that dies at a few thousand nodes, but whose
/// decision rule is the specification.
///
/// # Panics
/// Panics if `d` is not a valid decomposition of `g` (checked).
pub fn reference_via_decomposition(g: &Graph, d: &Decomposition) -> MisOutcome {
    crate::consume::reference_validate(g, d).expect("decomposition must be valid"); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
    let clustering = d.clustering();
    let mut colors: Vec<usize> = (0..clustering.cluster_count())
        .map(|c| d.color_of_cluster(c))
        .collect();
    colors.sort_unstable();
    colors.dedup();

    let n = g.node_count();
    let mut in_mis = vec![false; n];
    let mut decided = vec![false; n];
    let mut meter = CostMeter::default();

    for &color in &colors {
        let mut color_diam = 0u64;
        for c in 0..clustering.cluster_count() {
            if d.color_of_cluster(c) != color {
                continue;
            }
            let members = clustering.members(c);
            color_diam = color_diam.max(
                locality_graph::metrics::reference_induced_diameter(g, members)
                    .expect("clusters are connected") as u64, // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
            );
            for &v in members {
                let blocked = g.neighbors(v).iter().any(|&u| decided[u] && in_mis[u]);
                if !blocked {
                    in_mis[v] = true;
                }
                decided[v] = true;
            }
        }
        meter.rounds += 2 * color_diam + 2;
    }
    debug_assert!(decided.iter().all(|&x| x));
    MisOutcome { in_mis, meter }
}

/// Wire messages of the distributed Luby protocol. Priorities carry the
/// sender's id for tie-breaking; both fields are width-aware [`Compact`]
/// values, so the protocol is CONGEST-clean (`≤ 5·log n + 1` bits against
/// the default `8·log n` budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisMsg {
    /// "My priority this iteration is `.0`; my id is `.1`."
    Priority(Compact, Compact),
    /// "I joined the MIS — remove yourselves."
    Join,
}

impl WireSize for MisMsg {
    fn wire_bits(&self) -> u64 {
        1 + match self {
            MisMsg::Priority(p, id) => p.wire_bits() + id.wire_bits(),
            MisMsg::Join => 0,
        }
    }
}

/// Luby's algorithm as a genuine per-node engine protocol (two engine rounds
/// per iteration): odd rounds deliver priorities and local minima announce
/// `Join`; even rounds deliver the announcements — joiners halt *in*, their
/// neighbors halt *out*, everyone else redraws.
///
/// Messages are `Copy`, so the executor's round loop stays allocation-free.
#[derive(Debug, Clone)]
pub struct LubyProtocol {
    src: PrngSource,
    prio_bits: u32,
    id_width: u16,
    joined: bool,
    prio: u64,
    id: u64,
}

impl LubyProtocol {
    /// One instance for node `v`; randomness is derived from
    /// [`node_seed`]`(seed, id)`, so a run is reproducible node-by-node.
    pub fn new(g: &Graph, ids: &IdAssignment, v: usize, seed: u64) -> Self {
        Self {
            // 4·log n priority bits, capped at 60 so a priority always fits
            // one word draw (beyond n = 2^15 extra bits only shave an
            // already-negligible tie probability, and ties break by id).
            src: PrngSource::seeded(node_seed(seed, ids.id_of(v))),
            prio_bits: (4 * g.log2_n()).min(60),
            id_width: ids.bit_len().max(1) as u16,
            joined: false,
            prio: 0,
            id: ids.id_of(v),
        }
    }

    /// Random bits this node has drawn so far.
    pub fn bits_drawn(&self) -> u64 {
        self.src.bits_drawn()
    }

    fn draw_and_announce(&mut self, out: &mut Outlet<'_, MisMsg>) {
        self.prio = self.src.next_bits(self.prio_bits).expect("unbounded"); // audit: allow(panic) -- the seed source is constructed unbounded a few lines up
        out.broadcast(MisMsg::Priority(
            Compact::new(self.prio, self.prio_bits as u16),
            Compact::new(self.id, self.id_width),
        ));
    }
}

impl BatchProtocol for LubyProtocol {
    type Message = MisMsg;
    type Output = bool;

    fn start(&mut self, _ctx: &NodeContext, out: &mut Outlet<'_, MisMsg>) {
        self.draw_and_announce(out);
    }

    fn round(
        &mut self,
        _ctx: &NodeContext,
        round: u32,
        inbox: &Inbox<'_, MisMsg>,
        out: &mut Outlet<'_, MisMsg>,
    ) -> Control<bool> {
        if round % 2 == 1 {
            // Priorities are in: am I the local minimum among still-alive
            // neighbors (ties by id)?
            let is_min = inbox.iter().all(|(_, msg)| match msg {
                MisMsg::Priority(p, id) => (self.prio, self.id) < (p.value(), id.value()),
                MisMsg::Join => true,
            });
            if is_min {
                self.joined = true;
                out.broadcast(MisMsg::Join);
            }
            Control::Continue
        } else {
            // Join announcements are in.
            if self.joined {
                return Control::Halt(true);
            }
            if inbox.iter().any(|(_, msg)| matches!(msg, MisMsg::Join)) {
                return Control::Halt(false);
            }
            self.draw_and_announce(out);
            Control::Continue
        }
    }
}

/// Luby's MIS through the unified [`LocalAlgorithm`] interface, executed as
/// a CONGEST protocol on the arena engine (so rounds/messages/random bits in
/// the returned [`RoundStats`] are measured, not charged analytically).
#[derive(Debug, Clone, Copy)]
pub struct LubyMis {
    /// Worker threads for node steps (`1` = sequential; `0` = all cores).
    /// Any value produces bit-identical results.
    pub threads: usize,
    /// Engine round cap (`0` = a generous `w.h.p.`-safe default).
    pub max_rounds: u32,
}

impl Default for LubyMis {
    fn default() -> Self {
        Self {
            threads: 1,
            max_rounds: 0,
        }
    }
}

impl LocalAlgorithm for LubyMis {
    type Label = bool;

    fn name(&self) -> &'static str {
        "luby-mis"
    }

    fn run(&self, g: &Graph, ids: &IdAssignment, seed: u64) -> AlgorithmRun<bool> {
        run_congest_protocol(
            self.name(),
            g,
            ids,
            self.threads,
            self.max_rounds,
            (0..g.node_count()).map(|v| LubyProtocol::new(g, ids, v, seed)),
            LubyProtocol::bits_drawn,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::carving::ball_carving_decomposition;
    use locality_graph::generators::Family;
    use locality_rand::prelude::*;

    #[test]
    fn luby_valid_on_families() {
        let mut p = SplitMix64::new(101);
        for fam in Family::ALL {
            let g = fam.generate(150, &mut p);
            let mut src = PrngSource::seeded(fam as u64 + 1);
            let out = luby(&g, &mut src);
            verify_mis(&g, &out.in_mis).unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
            assert!(out.meter.random_bits > 0);
        }
    }

    #[test]
    fn luby_rounds_are_logarithmic() {
        let mut p = SplitMix64::new(103);
        let g = Graph::gnp_connected(500, 0.01, &mut p);
        let mut src = PrngSource::seeded(5);
        let out = luby(&g, &mut src);
        // 2 rounds per iteration; whp O(log n) iterations.
        assert!(
            out.meter.rounds <= 8 * g.log2_n() as u64,
            "rounds {}",
            out.meter.rounds
        );
    }

    /// The pre-worklist Luby loop (full `0..n` scan per iteration), kept
    /// verbatim as the bit-for-bit specification of the worklist rewrite.
    fn scan_luby(g: &Graph, src: &mut impl BitSource) -> MisOutcome {
        let n = g.node_count();
        let prio_bits = 4 * g.log2_n();
        let mut alive = vec![true; n];
        let mut in_mis = vec![false; n];
        let mut meter = CostMeter::default();
        let mut remaining: usize = n;
        while remaining > 0 {
            meter.rounds += 2;
            let before = src.bits_drawn();
            let prio: Vec<u64> = (0..n)
                .map(|v| {
                    if alive[v] {
                        src.next_bits(prio_bits).expect("unbounded source")
                    } else {
                        u64::MAX
                    }
                })
                .collect();
            meter.random_bits += src.bits_drawn() - before;
            let joins: Vec<usize> = (0..n)
                .filter(|&v| {
                    alive[v]
                        && g.neighbors(v)
                            .iter()
                            .all(|&u| !alive[u] || (prio[v], v) < (prio[u], u))
                })
                .collect();
            for &v in &joins {
                in_mis[v] = true;
                alive[v] = false;
                remaining -= 1;
                for &u in g.neighbors(v) {
                    if alive[u] {
                        alive[u] = false;
                        remaining -= 1;
                    }
                }
            }
        }
        MisOutcome { in_mis, meter }
    }

    #[test]
    fn luby_worklist_is_bit_identical_to_scan() {
        let mut p = SplitMix64::new(301);
        for fam in Family::ALL {
            for seed in 0..4u64 {
                let g = fam.generate(130, &mut p);
                let a = luby(&g, &mut PrngSource::seeded(seed * 31 + 1));
                let b = scan_luby(&g, &mut PrngSource::seeded(seed * 31 + 1));
                assert_eq!(a.in_mis, b.in_mis, "{} seed {seed}", fam.name());
                assert_eq!(a.meter.rounds, b.meter.rounds);
                assert_eq!(a.meter.random_bits, b.meter.random_bits);
            }
        }
    }

    #[test]
    fn via_decomposition_matches_reference_and_threads() {
        let mut p = SplitMix64::new(303);
        for fam in Family::ALL {
            let g = fam.generate(110, &mut p);
            let order: Vec<usize> = (0..g.node_count()).collect();
            let d = ball_carving_decomposition(&g, &order).decomposition;
            let reference = reference_via_decomposition(&g, &d);
            for threads in [1usize, 3, 64] {
                let fast = via_decomposition_threads(&g, &d, threads);
                assert_eq!(fast.in_mis, reference.in_mis, "{}", fam.name());
                assert_eq!(fast.meter, reference.meter, "{}", fam.name());
            }
        }
    }

    #[test]
    fn via_decomposition_parallel_path_engages_and_matches() {
        // Large enough that color classes cross the parallel threshold.
        let g = Graph::cycle(6000);
        let order: Vec<usize> = (0..g.node_count()).collect();
        let d = ball_carving_decomposition(&g, &order).decomposition;
        let a = via_decomposition_threads(&g, &d, 1);
        for threads in [2usize, 5] {
            let b = via_decomposition_threads(&g, &d, threads);
            assert_eq!(a.in_mis, b.in_mis, "threads={threads}");
            assert_eq!(a.meter, b.meter, "threads={threads}");
        }
        verify_mis(&g, &a.in_mis).unwrap();
    }

    #[test]
    fn via_decomposition_valid_and_deterministic() {
        let mut p = SplitMix64::new(105);
        for fam in Family::ALL {
            let g = fam.generate(100, &mut p);
            let order: Vec<usize> = (0..g.node_count()).collect();
            let d = ball_carving_decomposition(&g, &order).decomposition;
            let a = via_decomposition(&g, &d);
            let b = via_decomposition(&g, &d);
            verify_mis(&g, &a.in_mis).unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
            assert_eq!(a.in_mis, b.in_mis);
            assert_eq!(a.meter.random_bits, 0, "deterministic solver used bits");
        }
    }

    #[test]
    fn via_decomposition_round_shape() {
        // Rounds ≈ Σ_colors O(diam) = O(log n · log n) for the carving
        // decomposition.
        let mut p = SplitMix64::new(107);
        let g = Graph::gnp_connected(200, 0.02, &mut p);
        let order: Vec<usize> = (0..200).collect();
        let d = ball_carving_decomposition(&g, &order).decomposition;
        let out = via_decomposition(&g, &d);
        let log = g.log2_n() as u64;
        assert!(
            out.meter.rounds <= 4 * log * (2 * log + 2) + 2 * log,
            "rounds {}",
            out.meter.rounds
        );
    }

    #[test]
    fn empty_and_singleton() {
        let g = Graph::empty(1);
        let out = luby(&g, &mut PrngSource::seeded(1));
        assert_eq!(out.in_mis, vec![true]);
        let g0 = Graph::empty(0);
        let out0 = luby(&g0, &mut PrngSource::seeded(1));
        assert!(out0.in_mis.is_empty());
    }

    #[test]
    fn engine_luby_valid_on_families() {
        let mut p = SplitMix64::new(201);
        for fam in Family::ALL {
            let g = fam.generate(120, &mut p);
            let ids = IdAssignment::sequential(g.node_count());
            let run = LubyMis::default().run(&g, &ids, fam as u64 + 3);
            verify_mis(&g, &run.labels).unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
            assert!(run.stats.meter.random_bits > 0);
            assert_eq!(
                run.stats.meter.congest_violations,
                0,
                "{}: Luby messages must fit the CONGEST budget",
                fam.name()
            );
        }
    }

    #[test]
    fn engine_luby_deterministic_and_thread_count_invariant() {
        let mut p = SplitMix64::new(203);
        let g = Graph::gnp_connected(150, 0.03, &mut p);
        let ids = IdAssignment::sequential(g.node_count());
        let a = LubyMis::default().run(&g, &ids, 9);
        for threads in [1, 3, 8] {
            let b = LubyMis {
                threads,
                max_rounds: 0,
            }
            .run(&g, &ids, 9);
            assert_eq!(a.labels, b.labels, "threads={threads}");
            assert_eq!(a.stats, b.stats, "threads={threads}");
        }
    }

    #[test]
    fn engine_luby_rounds_logarithmic() {
        let mut p = SplitMix64::new(205);
        let g = Graph::gnp_connected(500, 0.01, &mut p);
        let ids = IdAssignment::sequential(g.node_count());
        let run = LubyMis::default().run(&g, &ids, 4);
        // Two engine rounds per iteration; w.h.p. O(log n) iterations.
        assert!(
            run.stats.meter.rounds <= 8 * g.log2_n() as u64,
            "rounds {}",
            run.stats.meter.rounds
        );
    }

    #[test]
    fn engine_luby_edge_cases() {
        let ids1 = IdAssignment::sequential(1);
        let run = LubyMis::default().run(&Graph::empty(1), &ids1, 1);
        assert_eq!(run.labels, vec![true]);
        let ids0 = IdAssignment::sequential(0);
        let run0 = LubyMis::default().run(&Graph::empty(0), &ids0, 1);
        assert!(run0.labels.is_empty());
    }

    #[test]
    fn engine_luby_handles_large_id_spaces() {
        // Regression: with n > 2^15, 4·log n priority bits would exceed the
        // 64-bit word draw; the cap keeps large graphs runnable.
        let g = Graph::cycle(70_000);
        let ids = IdAssignment::sequential(g.node_count());
        let run = LubyMis::default().run(&g, &ids, 2);
        verify_mis(&g, &run.labels).unwrap();
        assert_eq!(run.stats.meter.congest_violations, 0);
    }

    #[test]
    fn mis_msg_wire_sizes() {
        assert_eq!(MisMsg::Join.wire_bits(), 1);
        let m = MisMsg::Priority(Compact::new(5, 12), Compact::new(3, 4));
        assert_eq!(m.wire_bits(), 17);
    }

    #[test]
    fn verify_rejects_bad_sets() {
        let g = Graph::path(3);
        assert!(verify_mis(&g, &[true, true, false]).is_err()); // adjacent
        assert!(verify_mis(&g, &[false, false, false]).is_err()); // undominated
        assert!(verify_mis(&g, &[true, false, true]).is_ok());
        assert!(verify_mis(&g, &[true, false]).is_err()); // wrong length
    }
}
