//! (∆+1)-vertex-coloring, randomized and decomposition-derandomized.
//!
//! The second canonical consumer of the paper's machinery (with
//! [`crate::mis`]). The randomized algorithm is the classic trial coloring:
//! every uncolored node proposes a uniformly random color from its current
//! palette (`{0..∆}` minus the neighbors' final colors) and keeps it if no
//! neighbor proposed the same color this round — `O(log n)` rounds w.h.p.
//! The deterministic route consumes a network decomposition exactly as MIS
//! does.

use crate::decomposition::types::Decomposition;
use locality_graph::Graph;
use locality_rand::source::BitSource;
use locality_sim::cost::CostMeter;

/// Verify a proper coloring with at most `palette` colors.
pub fn verify_coloring(g: &Graph, colors: &[usize], palette: usize) -> Result<(), String> {
    if colors.len() != g.node_count() {
        return Err("wrong vector length".into());
    }
    if let Some(&c) = colors.iter().find(|&&c| c >= palette) {
        return Err(format!("color {c} outside palette of {palette}"));
    }
    for (u, v) in g.edges() {
        if colors[u] == colors[v] {
            return Err(format!("edge ({u},{v}) is monochromatic ({})", colors[u]));
        }
    }
    Ok(())
}

/// Result of a coloring computation.
#[derive(Debug, Clone)]
pub struct ColoringOutcome {
    /// The per-node colors, all `< ∆ + 1`.
    pub colors: Vec<usize>,
    /// Round/randomness accounting.
    pub meter: CostMeter,
}

/// Randomized (∆+1)-coloring by trial colors.
///
/// # Example
/// ```
/// use locality_core::coloring::{random_coloring, verify_coloring};
/// use locality_graph::prelude::*;
/// use locality_rand::prelude::*;
///
/// let g = Graph::cycle(9);
/// let out = random_coloring(&g, &mut PrngSource::seeded(2));
/// verify_coloring(&g, &out.colors, g.max_degree() + 1).unwrap();
/// ```
pub fn random_coloring(g: &Graph, src: &mut impl BitSource) -> ColoringOutcome {
    let n = g.node_count();
    let palette = g.max_degree() + 1;
    let mut colors: Vec<Option<usize>> = vec![None; n];
    let mut meter = CostMeter::default();
    let mut remaining = n;

    while remaining > 0 {
        meter.rounds += 2;
        let before = src.bits_drawn();
        // Proposals.
        let proposals: Vec<Option<usize>> = (0..n)
            .map(|v| {
                if colors[v].is_some() {
                    return None;
                }
                let taken: Vec<usize> = g.neighbors(v).iter().filter_map(|&u| colors[u]).collect();
                let free: Vec<usize> = (0..palette).filter(|c| !taken.contains(c)).collect();
                debug_assert!(!free.is_empty(), "palette ∆+1 can never empty");
                Some(free[src.uniform_below(free.len() as u64) as usize])
            })
            .collect();
        meter.random_bits += src.bits_drawn() - before;

        // Keep conflict-free proposals.
        for v in 0..n {
            let Some(p) = proposals[v] else { continue };
            let conflict = g
                .neighbors(v)
                .iter()
                .any(|&u| proposals[u] == Some(p) || colors[u] == Some(p));
            if !conflict {
                colors[v] = Some(p);
                remaining -= 1;
            }
        }
    }

    ColoringOutcome {
        colors: colors
            .into_iter()
            .map(|c| c.expect("all colored"))
            .collect(),
        meter,
    }
}

/// Deterministic (∆+1)-coloring from a network decomposition (greedy within
/// clusters, color classes in order — same cost shape as
/// [`crate::mis::via_decomposition`]).
///
/// # Panics
/// Panics if `d` is not a valid decomposition of `g`.
pub fn via_decomposition(g: &Graph, d: &Decomposition) -> ColoringOutcome {
    d.validate(g).expect("decomposition must be valid");
    let clustering = d.clustering();
    let mut class_colors: Vec<usize> = (0..clustering.cluster_count())
        .map(|c| d.color_of_cluster(c))
        .collect();
    class_colors.sort_unstable();
    class_colors.dedup();

    let n = g.node_count();
    let palette = g.max_degree() + 1;
    let mut colors: Vec<Option<usize>> = vec![None; n];
    let mut meter = CostMeter::default();

    for &class in &class_colors {
        let mut class_diam = 0u64;
        for c in 0..clustering.cluster_count() {
            if d.color_of_cluster(c) != class {
                continue;
            }
            let members = clustering.members(c);
            class_diam = class_diam.max(
                locality_graph::metrics::induced_diameter(g, members)
                    .expect("clusters are connected") as u64,
            );
            for &v in members {
                let taken: Vec<usize> = g.neighbors(v).iter().filter_map(|&u| colors[u]).collect();
                let free = (0..palette)
                    .find(|cand| !taken.contains(cand))
                    .expect("palette ∆+1 suffices for greedy");
                colors[v] = Some(free);
            }
        }
        meter.rounds += 2 * class_diam + 2;
    }

    ColoringOutcome {
        colors: colors
            .into_iter()
            .map(|c| c.expect("all colored"))
            .collect(),
        meter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::carving::ball_carving_decomposition;
    use locality_graph::generators::Family;
    use locality_rand::prelude::*;

    #[test]
    fn randomized_valid_on_families() {
        let mut p = SplitMix64::new(111);
        for fam in Family::ALL {
            let g = fam.generate(120, &mut p);
            let out = random_coloring(&g, &mut PrngSource::seeded(fam as u64));
            verify_coloring(&g, &out.colors, g.max_degree() + 1)
                .unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
        }
    }

    #[test]
    fn randomized_rounds_logarithmic() {
        let mut p = SplitMix64::new(113);
        let g = Graph::gnp_connected(400, 0.015, &mut p);
        let out = random_coloring(&g, &mut PrngSource::seeded(9));
        assert!(
            out.meter.rounds <= 10 * g.log2_n() as u64,
            "rounds {}",
            out.meter.rounds
        );
    }

    #[test]
    fn deterministic_valid_and_reproducible() {
        let mut p = SplitMix64::new(115);
        for fam in Family::ALL {
            let g = fam.generate(90, &mut p);
            let order: Vec<usize> = (0..g.node_count()).collect();
            let d = ball_carving_decomposition(&g, &order).decomposition;
            let a = via_decomposition(&g, &d);
            verify_coloring(&g, &a.colors, g.max_degree() + 1)
                .unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
            let b = via_decomposition(&g, &d);
            assert_eq!(a.colors, b.colors);
            assert_eq!(a.meter.random_bits, 0);
        }
    }

    #[test]
    fn edge_cases() {
        let g = Graph::empty(3);
        let out = random_coloring(&g, &mut PrngSource::seeded(1));
        assert_eq!(out.colors, vec![0, 0, 0]);
        let g0 = Graph::empty(0);
        let out0 = random_coloring(&g0, &mut PrngSource::seeded(1));
        assert!(out0.colors.is_empty());
    }

    #[test]
    fn verifier_rejects_bad_colorings() {
        let g = Graph::path(3);
        assert!(verify_coloring(&g, &[0, 0, 1], 2).is_err()); // monochromatic
        assert!(verify_coloring(&g, &[0, 5, 0], 2).is_err()); // outside palette
        assert!(verify_coloring(&g, &[0, 1], 2).is_err()); // length
        assert!(verify_coloring(&g, &[0, 1, 0], 2).is_ok());
    }
}
