//! (∆+1)-vertex-coloring, randomized and decomposition-derandomized.
//!
//! The second canonical consumer of the paper's machinery (with
//! [`crate::mis`]). The randomized algorithm is the classic trial coloring:
//! every uncolored node proposes a uniformly random color from its current
//! palette (`{0..∆}` minus the neighbors' final colors) and keeps it if no
//! neighbor proposed the same color this round — `O(log n)` rounds w.h.p.
//! The deterministic route consumes a network decomposition exactly as MIS
//! does.

use crate::algorithm::{node_seed, run_congest_protocol, AlgorithmRun, LocalAlgorithm};
use crate::checkers::{VerifyError, VerifyErrorKind};
use crate::decomposition::types::Decomposition;
use locality_graph::ids::IdAssignment;
use locality_graph::Graph;
use locality_rand::source::{BitSource, PrngSource};
use locality_sim::cost::CostMeter;
use locality_sim::executor::{BatchProtocol, Control, Inbox, Outlet};
use locality_sim::node::NodeContext;
use locality_sim::wire::{Compact, WireSize};

/// Verify a proper coloring with at most `palette` colors; returns the first
/// violation as a typed [`VerifyError`] — match on its `kind`/`node` or
/// render via `Display`.
pub fn verify_coloring(g: &Graph, colors: &[usize], palette: usize) -> Result<(), VerifyError> {
    if colors.len() != g.node_count() {
        return Err(VerifyError::new(
            VerifyErrorKind::WrongLength,
            None,
            "wrong vector length",
        ));
    }
    if let Some(v) = (0..colors.len()).find(|&v| colors[v] >= palette) {
        return Err(VerifyError::new(
            VerifyErrorKind::OutsidePalette,
            Some(v),
            format!("color {} outside palette of {palette}", colors[v]),
        ));
    }
    for (u, v) in g.edges() {
        if colors[u] == colors[v] {
            return Err(VerifyError::new(
                VerifyErrorKind::MonochromaticEdge,
                Some(u),
                format!("edge ({u},{v}) is monochromatic ({})", colors[u]),
            ));
        }
    }
    Ok(())
}

/// Result of a coloring computation.
#[derive(Debug, Clone)]
pub struct ColoringOutcome {
    /// The per-node colors, all `< ∆ + 1`.
    pub colors: Vec<usize>,
    /// Round/randomness accounting.
    pub meter: CostMeter,
}

/// Randomized (∆+1)-coloring by trial colors.
///
/// # Example
/// ```
/// use locality_core::coloring::{random_coloring, verify_coloring};
/// use locality_graph::prelude::*;
/// use locality_rand::prelude::*;
///
/// let g = Graph::cycle(9);
/// let out = random_coloring(&g, &mut PrngSource::seeded(2));
/// verify_coloring(&g, &out.colors, g.max_degree() + 1).unwrap();
/// ```
pub fn random_coloring(g: &Graph, src: &mut impl BitSource) -> ColoringOutcome {
    let n = g.node_count();
    let palette = g.max_degree() + 1;
    let mut colors: Vec<Option<usize>> = vec![None; n];
    let mut meter = CostMeter::default();
    let mut remaining = n;

    while remaining > 0 {
        meter.rounds += 2;
        let before = src.bits_drawn();
        // Proposals.
        let proposals: Vec<Option<usize>> = (0..n)
            .map(|v| {
                if colors[v].is_some() {
                    return None;
                }
                let taken: Vec<usize> = g.neighbors(v).iter().filter_map(|&u| colors[u]).collect();
                let free: Vec<usize> = (0..palette).filter(|c| !taken.contains(c)).collect();
                debug_assert!(!free.is_empty(), "palette ∆+1 can never empty");
                Some(free[src.uniform_below(free.len() as u64) as usize])
            })
            .collect();
        meter.random_bits += src.bits_drawn() - before;

        // Keep conflict-free proposals.
        for v in 0..n {
            let Some(p) = proposals[v] else { continue };
            let conflict = g
                .neighbors(v)
                .iter()
                .any(|&u| proposals[u] == Some(p) || colors[u] == Some(p));
            if !conflict {
                colors[v] = Some(p);
                remaining -= 1;
            }
        }
    }

    ColoringOutcome {
        colors: colors
            .into_iter()
            .map(|c| c.expect("all colored")) // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
            .collect(),
        meter,
    }
}

/// Deterministic (∆+1)-coloring from a network decomposition (greedy within
/// clusters, color classes in order — same cost shape as
/// [`crate::mis::via_decomposition`]).
///
/// As for MIS, same-color clusters are non-adjacent, so each color class's
/// clusters are processed in parallel over fixed cluster buckets with
/// bit-identical output for every thread count; the per-node palette scan
/// uses an epoch-stamped mex buffer (`O(deg + answer)`, allocation-free) in
/// place of the reference's quadratic `Vec::contains` probe. Equivalent to
/// the retained [`reference_via_decomposition`].
///
/// # Panics
/// Panics if `d` is not a valid decomposition of `g`.
pub fn via_decomposition(g: &Graph, d: &Decomposition) -> ColoringOutcome {
    via_decomposition_threads(g, d, 0)
}

/// [`via_decomposition`] with an explicit thread count (`0` = all available).
/// Under the `determinism-checks` cargo feature each call re-runs
/// single-threaded and asserts bit-identical output.
///
/// # Panics
/// Panics if `d` is not a valid decomposition of `g`.
pub fn via_decomposition_threads(g: &Graph, d: &Decomposition, threads: usize) -> ColoringOutcome {
    let result = coloring_consume(g, d, crate::consume::resolve_threads(threads));
    #[cfg(feature = "determinism-checks")]
    {
        let sequential = coloring_consume(g, d, 1);
        assert_eq!(
            result.colors, sequential.colors,
            "determinism check: parallel coloring consumer diverged from sequential"
        );
        assert_eq!(result.meter, sequential.meter);
    }
    result
}

/// Per-thread greedy state: an epoch-stamped "color taken" buffer over the
/// palette, so the mex scan never clears or allocates.
struct MexBuf {
    stamp: Vec<u64>,
    epoch: u64,
}

impl MexBuf {
    fn new(palette: usize) -> Self {
        Self {
            stamp: vec![0; palette],
            epoch: 0,
        }
    }
}

fn coloring_consume(g: &Graph, d: &Decomposition, threads: usize) -> ColoringOutcome {
    let plan = crate::consume::plan_consumer(g, d).expect("decomposition must be valid"); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
    consume_with_plan(g, d, &plan, threads)
}

/// The plan-reusing form of the deterministic consumer (see
/// [`crate::mis::consume_with_plan`]): the serving session validates the
/// decomposition once and replays the cached plan across requests.
/// Bit-identical to [`via_decomposition_threads`] by construction.
pub(crate) fn consume_with_plan(
    g: &Graph,
    d: &Decomposition,
    plan: &crate::consume::ConsumerPlan,
    threads: usize,
) -> ColoringOutcome {
    let clustering = d.clustering();
    let n = g.node_count();
    let palette = g.max_degree() + 1;
    let mut colors: Vec<Option<usize>> = vec![None; n];
    let mut meter = CostMeter::default();

    for (_, clusters) in &plan.classes {
        let class_diam = clusters
            .iter()
            .map(|&c| u64::from(plan.diam[c as usize]))
            .max()
            .unwrap_or(0);
        let members_total: usize = clusters
            .iter()
            .map(|&c| clustering.members(c as usize).len())
            .sum();
        let parallel = members_total >= crate::consume::PARALLEL_MIN_MEMBERS;
        let staged = crate::consume::process_clusters(
            clusters,
            threads,
            parallel,
            || MexBuf::new(palette),
            &|mex: &mut MexBuf, c, out: &mut Vec<(u32, u32)>| {
                let base = out.len();
                for &v in clustering.members(c as usize) {
                    mex.epoch += 1;
                    for &u in g.neighbors(v) {
                        // Final colors of previous classes, or staged colors
                        // of this cluster's earlier members (same-color
                        // clusters are non-adjacent, so nothing else counts).
                        let taken = colors[u].or_else(|| {
                            out[base..]
                                .binary_search_by_key(&(u as u32), |&(w, _)| w)
                                .ok()
                                .map(|i| out[base + i].1 as usize)
                        });
                        if let Some(t) = taken {
                            mex.stamp[t] = mex.epoch;
                        }
                    }
                    let free = (0..palette)
                        .find(|&cand| mex.stamp[cand] != mex.epoch)
                        .expect("palette ∆+1 suffices for greedy"); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
                    out.push((v as u32, free as u32));
                }
            },
        );
        for bucket in staged {
            for (v, c) in bucket {
                colors[v as usize] = Some(c as usize);
            }
        }
        meter.rounds += 2 * class_diam + 2;
    }

    ColoringOutcome {
        colors: colors
            .into_iter()
            .map(|c| c.expect("all colored")) // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
            .collect(),
        meter,
    }
}

/// The pre-optimization deterministic consumer, retained as the differential
/// oracle for [`via_decomposition`] (sequential sweep, fresh subgraph
/// diameter per cluster — the pre-rewrite validator's cost, via the
/// retained reference validate — and linear-scan palette probes).
///
/// # Panics
/// Panics if `d` is not a valid decomposition of `g`.
pub fn reference_via_decomposition(g: &Graph, d: &Decomposition) -> ColoringOutcome {
    crate::consume::reference_validate(g, d).expect("decomposition must be valid"); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
    let clustering = d.clustering();
    let mut class_colors: Vec<usize> = (0..clustering.cluster_count())
        .map(|c| d.color_of_cluster(c))
        .collect();
    class_colors.sort_unstable();
    class_colors.dedup();

    let n = g.node_count();
    let palette = g.max_degree() + 1;
    let mut colors: Vec<Option<usize>> = vec![None; n];
    let mut meter = CostMeter::default();

    for &class in &class_colors {
        let mut class_diam = 0u64;
        for c in 0..clustering.cluster_count() {
            if d.color_of_cluster(c) != class {
                continue;
            }
            let members = clustering.members(c);
            class_diam = class_diam.max(
                locality_graph::metrics::reference_induced_diameter(g, members)
                    .expect("clusters are connected") as u64, // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
            );
            for &v in members {
                let taken: Vec<usize> = g.neighbors(v).iter().filter_map(|&u| colors[u]).collect();
                let free = (0..palette)
                    .find(|cand| !taken.contains(cand))
                    .expect("palette ∆+1 suffices for greedy"); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
                colors[v] = Some(free);
            }
        }
        meter.rounds += 2 * class_diam + 2;
    }

    ColoringOutcome {
        colors: colors
            .into_iter()
            .map(|c| c.expect("all colored")) // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
            .collect(),
        meter,
    }
}

/// Wire messages of the distributed trial-coloring protocol: colors are
/// width-aware [`Compact`] values (`⌈log2(∆+1)⌉ ≤ log n` bits), so the
/// protocol is CONGEST-clean under the default budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorMsg {
    /// "I propose this color for myself this round."
    Propose(Compact),
    /// "This color is now permanently mine."
    Final(Compact),
}

impl WireSize for ColorMsg {
    fn wire_bits(&self) -> u64 {
        1 + match self {
            ColorMsg::Propose(c) | ColorMsg::Final(c) => c.wire_bits(),
        }
    }
}

/// The one-round-per-trial (∆+1)-coloring as a genuine engine protocol (the
/// boosting shape: each trial is a single proposal exchange, and every trial
/// succeeds per node with constant probability, so failure decays
/// exponentially in the round budget). Odd engine rounds deliver proposals —
/// conflict-free proposers finalize and announce; even rounds deliver the
/// announcements — finalized nodes halt, everyone else redraws from the
/// colors its neighbors have not claimed.
#[derive(Debug, Clone)]
pub struct TrialProtocol {
    src: PrngSource,
    palette: usize,
    width: u16,
    taken: Vec<bool>,
    proposal: usize,
    finalized: Option<usize>,
}

impl TrialProtocol {
    /// One instance for node `v` with a shared `palette` size (the algorithm
    /// wrapper computes `∆ + 1` once — `Graph::max_degree` is an `O(n)` scan
    /// that must not run per node).
    pub fn new(palette: usize, ids: &IdAssignment, v: usize, seed: u64) -> Self {
        let width = (64 - (palette as u64).leading_zeros()).max(1) as u16;
        Self {
            src: PrngSource::seeded(node_seed(seed, ids.id_of(v))),
            palette,
            width,
            taken: vec![false; palette],
            proposal: 0,
            finalized: None,
        }
    }

    /// Random bits this node has drawn so far.
    pub fn bits_drawn(&self) -> u64 {
        self.src.bits_drawn()
    }

    fn draw_and_propose(&mut self, out: &mut Outlet<'_, ColorMsg>) {
        let free = self.palette - self.taken.iter().filter(|&&t| t).count();
        debug_assert!(free > 0, "palette ∆+1 can never empty");
        let k = self.src.uniform_below(free as u64) as usize;
        self.proposal = (0..self.palette)
            .filter(|&c| !self.taken[c])
            .nth(k)
            .expect("k < free"); // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
        out.broadcast(ColorMsg::Propose(Compact::new(
            self.proposal as u64,
            self.width,
        )));
    }
}

impl BatchProtocol for TrialProtocol {
    type Message = ColorMsg;
    type Output = usize;

    fn start(&mut self, _ctx: &NodeContext, out: &mut Outlet<'_, ColorMsg>) {
        self.draw_and_propose(out);
    }

    fn round(
        &mut self,
        _ctx: &NodeContext,
        round: u32,
        inbox: &Inbox<'_, ColorMsg>,
        out: &mut Outlet<'_, ColorMsg>,
    ) -> Control<usize> {
        if round % 2 == 1 {
            // Proposals are in: keep mine only if no neighbor wants it too.
            let conflict = inbox.iter().any(|(_, msg)| match msg {
                ColorMsg::Propose(c) => c.value() as usize == self.proposal,
                ColorMsg::Final(_) => false,
            });
            if !conflict {
                self.finalized = Some(self.proposal);
                out.broadcast(ColorMsg::Final(Compact::new(
                    self.proposal as u64,
                    self.width,
                )));
            }
            Control::Continue
        } else {
            // Finalizations are in.
            for (_, msg) in inbox.iter() {
                if let ColorMsg::Final(c) = msg {
                    self.taken[c.value() as usize] = true;
                }
            }
            if let Some(color) = self.finalized {
                return Control::Halt(color);
            }
            self.draw_and_propose(out);
            Control::Continue
        }
    }
}

/// Trial (∆+1)-coloring through the unified [`LocalAlgorithm`] interface,
/// executed as a CONGEST protocol on the arena engine.
#[derive(Debug, Clone, Copy)]
pub struct TrialColoring {
    /// Worker threads for node steps (`1` = sequential; `0` = all cores).
    /// Any value produces bit-identical results.
    pub threads: usize,
    /// Engine round cap (`0` = a generous `w.h.p.`-safe default).
    pub max_rounds: u32,
}

impl Default for TrialColoring {
    fn default() -> Self {
        Self {
            threads: 1,
            max_rounds: 0,
        }
    }
}

impl LocalAlgorithm for TrialColoring {
    type Label = usize;

    fn name(&self) -> &'static str {
        "trial-coloring"
    }

    fn run(&self, g: &Graph, ids: &IdAssignment, seed: u64) -> AlgorithmRun<usize> {
        let palette = g.max_degree() + 1;
        run_congest_protocol(
            self.name(),
            g,
            ids,
            self.threads,
            self.max_rounds,
            (0..g.node_count()).map(|v| TrialProtocol::new(palette, ids, v, seed)),
            TrialProtocol::bits_drawn,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::carving::ball_carving_decomposition;
    use locality_graph::generators::Family;
    use locality_rand::prelude::*;

    #[test]
    fn randomized_valid_on_families() {
        let mut p = SplitMix64::new(111);
        for fam in Family::ALL {
            let g = fam.generate(120, &mut p);
            let out = random_coloring(&g, &mut PrngSource::seeded(fam as u64));
            verify_coloring(&g, &out.colors, g.max_degree() + 1)
                .unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
        }
    }

    #[test]
    fn randomized_rounds_logarithmic() {
        let mut p = SplitMix64::new(113);
        let g = Graph::gnp_connected(400, 0.015, &mut p);
        let out = random_coloring(&g, &mut PrngSource::seeded(9));
        assert!(
            out.meter.rounds <= 10 * g.log2_n() as u64,
            "rounds {}",
            out.meter.rounds
        );
    }

    #[test]
    fn via_decomposition_matches_reference_and_threads() {
        let mut p = SplitMix64::new(311);
        for fam in Family::ALL {
            let g = fam.generate(100, &mut p);
            let order: Vec<usize> = (0..g.node_count()).collect();
            let d = ball_carving_decomposition(&g, &order).decomposition;
            let reference = reference_via_decomposition(&g, &d);
            for threads in [1usize, 4, 64] {
                let fast = via_decomposition_threads(&g, &d, threads);
                assert_eq!(fast.colors, reference.colors, "{}", fam.name());
                assert_eq!(fast.meter, reference.meter, "{}", fam.name());
            }
        }
    }

    #[test]
    fn via_decomposition_parallel_path_engages_and_matches() {
        let g = Graph::cycle(6000);
        let order: Vec<usize> = (0..g.node_count()).collect();
        let d = ball_carving_decomposition(&g, &order).decomposition;
        let a = via_decomposition_threads(&g, &d, 1);
        let b = via_decomposition_threads(&g, &d, 3);
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.meter, b.meter);
        verify_coloring(&g, &a.colors, g.max_degree() + 1).unwrap();
    }

    #[test]
    fn deterministic_valid_and_reproducible() {
        let mut p = SplitMix64::new(115);
        for fam in Family::ALL {
            let g = fam.generate(90, &mut p);
            let order: Vec<usize> = (0..g.node_count()).collect();
            let d = ball_carving_decomposition(&g, &order).decomposition;
            let a = via_decomposition(&g, &d);
            verify_coloring(&g, &a.colors, g.max_degree() + 1)
                .unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
            let b = via_decomposition(&g, &d);
            assert_eq!(a.colors, b.colors);
            assert_eq!(a.meter.random_bits, 0);
        }
    }

    #[test]
    fn edge_cases() {
        let g = Graph::empty(3);
        let out = random_coloring(&g, &mut PrngSource::seeded(1));
        assert_eq!(out.colors, vec![0, 0, 0]);
        let g0 = Graph::empty(0);
        let out0 = random_coloring(&g0, &mut PrngSource::seeded(1));
        assert!(out0.colors.is_empty());
    }

    #[test]
    fn engine_trial_coloring_valid_on_families() {
        let mut p = SplitMix64::new(211);
        for fam in Family::ALL {
            let g = fam.generate(110, &mut p);
            let ids = IdAssignment::sequential(g.node_count());
            let run = TrialColoring::default().run(&g, &ids, fam as u64 + 5);
            verify_coloring(&g, &run.labels, g.max_degree() + 1)
                .unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
            assert_eq!(
                run.stats.meter.congest_violations,
                0,
                "{}: color messages must fit the CONGEST budget",
                fam.name()
            );
        }
    }

    #[test]
    fn engine_trial_coloring_thread_count_invariant() {
        let mut p = SplitMix64::new(213);
        let g = Graph::gnp_connected(130, 0.04, &mut p);
        let ids = IdAssignment::sequential(g.node_count());
        let a = TrialColoring::default().run(&g, &ids, 17);
        let b = TrialColoring {
            threads: 5,
            max_rounds: 0,
        }
        .run(&g, &ids, 17);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn engine_trial_coloring_edge_cases() {
        let ids = IdAssignment::sequential(3);
        let run = TrialColoring::default().run(&Graph::empty(3), &ids, 1);
        assert_eq!(run.labels, vec![0, 0, 0]);
        let ids0 = IdAssignment::sequential(0);
        let run0 = TrialColoring::default().run(&Graph::empty(0), &ids0, 1);
        assert!(run0.labels.is_empty());
    }

    #[test]
    fn color_msg_wire_sizes() {
        assert_eq!(ColorMsg::Propose(Compact::new(3, 5)).wire_bits(), 6);
        assert_eq!(ColorMsg::Final(Compact::new(3, 5)).wire_bits(), 6);
    }

    #[test]
    fn verifier_rejects_bad_colorings() {
        let g = Graph::path(3);
        assert!(verify_coloring(&g, &[0, 0, 1], 2).is_err()); // monochromatic
        assert!(verify_coloring(&g, &[0, 5, 0], 2).is_err()); // outside palette
        assert!(verify_coloring(&g, &[0, 1], 2).is_err()); // length
        assert!(verify_coloring(&g, &[0, 1, 0], 2).is_ok());
    }
}
