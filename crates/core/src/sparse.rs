//! One private bit per `poly(log n)` hops (§3.1: Lemma 3.2, Lemma 3.3,
//! Theorem 3.1 and Theorem 3.7).
//!
//! The regime: a set `S ⊆ V` of nodes each holds a *single* independent
//! random bit, and every node has some holder within `h` hops. The pipeline:
//!
//! 1. **Bit-gathering clustering (Lemma 3.2).** Compute an
//!    `(h′, h′·log n)`-ruling set `R` with `h′ = Θ(k·h)` and cluster every
//!    node with its nearest ruling node (Voronoi). Non-isolated clusters
//!    provably contain `≥ k` holders; their bits are upcast to the center,
//!    giving each cluster center a private tape of `≥ k` bits.
//! 2. **Decomposition of the cluster graph (Lemma 3.3).** Run the
//!    Elkin–Neiman construction *on the cluster graph*, each cluster drawing
//!    its radii from its gathered tape. Isolated clusters take color 0.
//!    Lifting back yields an `(O(log n), h·poly(log n))`-decomposition of the
//!    base graph (Theorem 3.1).
//! 3. **Strong-diameter variant (Theorem 3.7).** Gather `O(log⁴ n)` bits per
//!    cluster instead, view them as per-cluster shared seeds, and run the
//!    Theorem 3.6 construction ([`crate::shared`]) with each node sampling
//!    from its cluster's seed: an `(O(log n), O(log² n))` strong-diameter
//!    decomposition whose diameter no longer depends on `h`.

use crate::decomposition::elkin_neiman::{elkin_neiman_with_sampler, ElkinNeimanConfig};
use crate::decomposition::types::Decomposition;
use crate::ruling::{ruling_set, RulingSetParams};
use crate::shared::{run_construction, SharedDecompConfig};
use locality_graph::cluster::{ClusterGraph, Clustering};
use locality_graph::ids::IdAssignment;
use locality_graph::metrics::weak_diameter;
use locality_graph::subgraph::InducedSubgraph;
use locality_graph::traversal::multi_source_bfs;
use locality_graph::Graph;
use locality_rand::kwise::{flat_index, KWiseBits};
use locality_rand::source::{BitSource, BitTape};
use locality_rand::sparse::SparseBits;
use locality_sim::cost::CostMeter;

/// Choose a canonical holder set: a greedy `h`-dominating set (every node
/// within `h` hops of a holder — the covering premise of Theorem 3.1).
///
/// # Example
/// ```
/// use locality_core::sparse::choose_holders;
/// use locality_graph::prelude::*;
/// let g = Graph::path(10);
/// let holders = choose_holders(&g, 2);
/// let (dist, _) = multi_source_bfs(&g, &holders);
/// assert!(g.nodes().all(|v| dist[v].unwrap() <= 2));
/// ```
pub fn choose_holders(g: &Graph, h: u32) -> Vec<usize> {
    let mut holders = Vec::new();
    let mut covered = vec![false; g.node_count()];
    for v in g.nodes() {
        if !covered[v] {
            holders.push(v);
            for u in locality_graph::traversal::ball(g, v, h) {
                covered[u] = true;
            }
        }
    }
    holders
}

/// Verify that every node has a holder within `h` hops.
pub fn verify_covering(g: &Graph, bits: &SparseBits, h: u32) -> bool {
    let holders = bits.holders();
    if holders.is_empty() {
        return g.node_count() == 0;
    }
    let (dist, _) = multi_source_bfs(g, &holders);
    g.nodes().all(|v| matches!(dist[v], Some(d) if d <= h))
}

/// Tuning for the Theorem 3.1 pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparsePipelineConfig {
    /// Covering radius `h` of the bit placement.
    pub h: u32,
    /// Ruling-set separation `h′` (paper: `10·k·h`).
    pub ruling_alpha: u32,
    /// Elkin–Neiman parameters for the cluster graph.
    pub en: ElkinNeimanConfig,
}

impl SparsePipelineConfig {
    /// Paper-shaped parameters: `k = c·log² n` bits per cluster would be the
    /// worst-case need; we provision the separation for the *expected* need
    /// (`O(log n)` phases × `O(1)` bits each, cap-truncated), keeping the
    /// simulated diameters reasonable. The EN cap is sized for the cluster
    /// count.
    pub fn for_graph(g: &Graph, h: u32) -> Self {
        let log = g.log2_n();
        Self {
            h,
            ruling_alpha: (4 * h * log).max(2),
            en: ElkinNeimanConfig::for_n(g.node_count()),
        }
    }
}

/// Outcome of the Theorem 3.1 pipeline.
#[derive(Debug, Clone)]
pub struct SparseOutcome {
    /// The decomposition of the base graph, if successful.
    pub decomposition: Option<Decomposition>,
    /// Number of Voronoi clusters formed by Lemma 3.2.
    pub cluster_count: usize,
    /// Clusters with no neighboring cluster (colored 0 directly).
    pub isolated_clusters: usize,
    /// Non-isolated clusters whose gathered tape ran dry during sampling
    /// (counted; sampling falls back to radius 1 — a diagnostic for
    /// under-provisioned placements).
    pub tape_shortfalls: usize,
    /// Largest Voronoi cluster radius (the `h·polylog` factor).
    pub max_voronoi_radius: u32,
    /// Total private random bits in the whole network (`|S|`).
    pub total_bits_available: u64,
    /// Bits actually consumed from the gathered tapes.
    pub bits_consumed: u64,
    /// Round accounting (ruling set + gathering + EN on the cluster graph,
    /// cluster-graph rounds multiplied by the cluster-radius overhead).
    pub meter: CostMeter,
}

/// Run the Theorem 3.1 pipeline: sparse single bits → bit-gathering
/// clustering (Lemma 3.2) → Elkin–Neiman over the cluster graph (Lemma 3.3).
///
/// # Panics
/// Panics if the placement does not cover the graph within `cfg.h` hops.
pub fn sparse_randomness_decomposition(
    g: &Graph,
    bits: &SparseBits,
    cfg: &SparsePipelineConfig,
) -> SparseOutcome {
    assert!(
        verify_covering(g, bits, cfg.h),
        "bit placement must cover every node within h hops"
    );
    let ids = IdAssignment::sequential(g.node_count());
    let mut meter = CostMeter::default();

    // --- Lemma 3.2: ruling set + Voronoi clustering + bit gathering. ---
    let all: Vec<usize> = g.nodes().collect();
    let ruling = ruling_set(
        g,
        &ids,
        &all,
        RulingSetParams {
            alpha: cfg.ruling_alpha,
        },
    );
    meter += ruling.meter;

    let (dist, nearest) = multi_source_bfs(g, &ruling.set);
    let max_voronoi_radius = (0..g.node_count())
        .filter_map(|v| dist[v])
        .max()
        .unwrap_or(0);
    meter.rounds += 2 * max_voronoi_radius as u64; // flooding + upcast

    let labels: Vec<Option<usize>> = (0..g.node_count()).map(|v| nearest[v]).collect();
    let clustering = Clustering::from_labels(labels);
    let cluster_count = clustering.cluster_count();
    let cg = ClusterGraph::contract(g, clustering.clone());

    // Gather each cluster's bits to its center, in node order.
    let mut tapes: Vec<BitTape> = (0..cluster_count)
        .map(|c| {
            let cluster_bits: Vec<bool> = clustering
                .members(c)
                .iter()
                .filter_map(|&v| bits.bit_of(v))
                .collect();
            BitTape::from_bits(cluster_bits)
        })
        .collect();

    // --- Lemma 3.3: EN over the non-isolated part of the cluster graph. ---
    let quotient = cg.quotient();
    let isolated: Vec<usize> = (0..cluster_count)
        .filter(|&c| quotient.degree(c) == 0)
        .collect();
    let non_isolated: Vec<usize> = (0..cluster_count)
        .filter(|&c| quotient.degree(c) > 0)
        .collect();
    let isolated_clusters = isolated.len();

    let mut tape_shortfalls = 0usize;
    let mut final_label: Vec<Option<usize>> = vec![None; g.node_count()];
    let mut final_color: Vec<usize> = Vec::new();

    // Isolated clusters: color 0, one final cluster each.
    for &c in &isolated {
        let id = final_color.len();
        final_color.push(0);
        for &v in clustering.members(c) {
            final_label[v] = Some(id);
        }
    }

    let mut en_success = true;
    if !non_isolated.is_empty() {
        let sub = InducedSubgraph::new(quotient, &non_isolated);
        let sub_ids = IdAssignment::sequential(sub.graph().node_count());
        let en_cfg = ElkinNeimanConfig {
            phases: cfg.en.phases,
            cap: cfg.en.cap,
        };
        let mut shortfalls = 0usize;
        let out = {
            let tapes = &mut tapes;
            elkin_neiman_with_sampler(sub.graph(), &sub_ids, &en_cfg, |_phase, local| {
                let c = sub.to_original(local);
                let tape = &mut tapes[c];
                let before = tape.bits_drawn();
                // Manual capped-geometric draw that tolerates exhaustion.
                let mut value = en_cfg.cap;
                let mut exhausted = false;
                for k in 1..=en_cfg.cap {
                    match tape.try_next_bit() {
                        Ok(true) => {}
                        Ok(false) => {
                            value = k;
                            break;
                        }
                        Err(_) => {
                            value = k;
                            exhausted = true;
                            break;
                        }
                    }
                }
                if exhausted {
                    shortfalls += 1;
                }
                (value, tape.bits_drawn() - before)
            })
        };
        tape_shortfalls = shortfalls;
        // Cluster-graph rounds cost a factor of the cluster radius on G.
        let overhead = (2 * max_voronoi_radius as u64 + 1).max(1);
        let mut en_meter = out.meter;
        en_meter.rounds *= overhead;
        meter += en_meter;

        if let Some(cg_decomp) = out.decomposition {
            // Lift: final cluster = set of Voronoi clusters in one CG
            // cluster; color = 1 + phase color.
            let cgc = cg_decomp.clustering();
            let base = final_color.len();
            for cg_cluster in 0..cgc.cluster_count() {
                final_color.push(1 + cg_decomp.color_of_cluster(cg_cluster));
            }
            for local in 0..sub.graph().node_count() {
                let c = sub.to_original(local);
                let cg_cluster = cgc.cluster_of(local).expect("total"); // audit: allow(panic) -- clustering is total over clustered nodes, validated where it was built
                for &v in clustering.members(c) {
                    final_label[v] = Some(base + cg_cluster);
                }
            }
        } else {
            en_success = false;
        }
    }

    let bits_consumed: u64 = tapes.iter().map(|t| t.bits_drawn()).sum();
    let decomposition = if en_success && g.node_count() > 0 {
        let fc = Clustering::from_labels(final_label.clone());
        // Colors must follow the compaction of `from_labels`.
        let colors: Vec<usize> = (0..fc.cluster_count())
            .map(|c| {
                let v = fc.members(c)[0];
                final_color[final_label[v].expect("labeled")] // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
            })
            .collect();
        Some(Decomposition::new(fc, colors).expect("one color per cluster")) // audit: allow(panic) -- arity/contiguity established by construction on the preceding lines
    } else if g.node_count() == 0 {
        // audit: allow(panic) -- arity/contiguity established by construction on the preceding lines
        Some(Decomposition::new(Clustering::singletons(0), vec![]).expect("empty decomposition"))
    } else {
        None
    };

    SparseOutcome {
        decomposition,
        cluster_count,
        isolated_clusters,
        tape_shortfalls,
        max_voronoi_radius,
        total_bits_available: bits.total_bits(),
        bits_consumed,
        meter,
    }
}

/// Theorem 3.7: the strong-diameter variant. Gather the bits as in
/// Lemma 3.2, view each cluster's tape as that cluster's *shared seed*, and
/// run the Theorem 3.6 construction with every node sampling from its
/// cluster's seed. The decomposition diameter is `O(log² n)` — independent
/// of `h`.
///
/// Returns the outcome of the shared construction plus the gathering
/// diagnostics (shortfall = clusters whose tape was too short to seed the
/// two k-wise families; those clusters fall back to a zero seed and are
/// counted).
pub fn sparse_strong_diameter_decomposition(
    g: &Graph,
    bits: &SparseBits,
    h: u32,
) -> (crate::shared::SharedOutcome, usize) {
    assert!(
        verify_covering(g, bits, h),
        "bit placement must cover every node within h hops"
    );
    let cfg = SharedDecompConfig::for_graph(g);
    // Gather via the same Voronoi clustering as the Theorem 3.1 pipeline.
    let ids = IdAssignment::sequential(g.node_count());
    let all: Vec<usize> = g.nodes().collect();
    let ruling = ruling_set(
        g,
        &ids,
        &all,
        RulingSetParams {
            alpha: (4 * h).max(2),
        },
    );
    let (_, nearest) = multi_source_bfs(g, &ruling.set);
    let clustering = Clustering::from_labels((0..g.node_count()).map(|v| nearest[v]).collect());

    let needed = cfg.seed_bits_needed();
    let mut shortfall = 0usize;
    let families: Vec<Option<(KWiseBits, KWiseBits)>> = (0..clustering.cluster_count())
        .map(|c| {
            let cluster_bits: Vec<bool> = clustering
                .members(c)
                .iter()
                .filter_map(|&v| bits.bit_of(v))
                .collect();
            if cluster_bits.len() < needed {
                shortfall += 1;
                return None;
            }
            let mut tape = BitTape::from_bits(cluster_bits);
            let a = KWiseBits::from_source(cfg.kwise, &mut tape).expect("length checked"); // audit: allow(panic) -- the seed source is constructed unbounded a few lines up
            let b = KWiseBits::from_source(cfg.kwise, &mut tape).expect("length checked"); // audit: allow(panic) -- the seed source is constructed unbounded a few lines up
            Some((a, b))
        })
        .collect();

    let n = g.node_count() as u64;
    let log = g.log2_n() as u64;
    let shared_bits = bits.total_bits();
    let sampler = |phase: u32, epoch: u32, v: usize| -> (bool, u32) {
        let c = clustering.cluster_of(v).expect("voronoi is total"); // audit: allow(panic) -- clustering is total over clustered nodes, validated where it was built
        let idx = flat_index(&[phase as u64, epoch as u64, v as u64]);
        match &families[c] {
            Some((centers, radii)) => {
                let num = (1u64 << epoch.min(62)) * log;
                let sampled = if epoch >= cfg.epochs || num >= n {
                    true
                } else {
                    centers.bernoulli(idx, num, n)
                };
                (sampled, radii.geometric(idx, cfg.cap))
            }
            // Degenerate fallback: deterministic late self-sampling.
            None => (epoch >= cfg.epochs, 1),
        }
    };
    let out = run_construction(g, &cfg, sampler, shared_bits);
    (out, shortfall)
}

/// Weak-diameter bound of the final clusters of a sparse-pipeline
/// decomposition (diagnostic for the `h · polylog` claim of Theorem 3.1).
pub fn max_weak_diameter(g: &Graph, d: &Decomposition) -> u32 {
    (0..d.clustering().cluster_count())
        .filter_map(|c| weak_diameter(g, d.clustering().members(c)))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_rand::prelude::*;

    fn place(g: &Graph, h: u32, seed: u64) -> SparseBits {
        let holders = choose_holders(g, h);
        let mut src = PrngSource::seeded(seed);
        SparseBits::place(&holders, &mut src)
    }

    #[test]
    fn choose_holders_covers_and_is_sparse() {
        let g = Graph::grid(10, 10);
        for h in [1, 2, 4] {
            let holders = choose_holders(&g, h);
            let bits = SparseBits::from_pairs(holders.iter().map(|&v| (v, true)));
            assert!(verify_covering(&g, &bits, h));
            // Sparser than one-per-node for h >= 1 on a grid.
            assert!(holders.len() < g.node_count());
        }
    }

    #[test]
    fn pipeline_produces_valid_decomposition() {
        let mut p = SplitMix64::new(71);
        let g = Graph::gnp_connected(150, 0.02, &mut p);
        for h in [1u32, 2] {
            let bits = place(&g, h, 100 + h as u64);
            let cfg = SparsePipelineConfig::for_graph(&g, h);
            let out = sparse_randomness_decomposition(&g, &bits, &cfg);
            let d = out
                .decomposition
                .unwrap_or_else(|| panic!("h={h}: pipeline failed"));
            let q = d.validate(&g).unwrap();
            assert!(q.colors as u32 <= cfg.en.phases + 1, "h={h}: {}", q.colors);
            // Far fewer random bits than nodes.
            assert!(out.total_bits_available < g.node_count() as u64);
            assert!(out.bits_consumed <= out.total_bits_available);
        }
    }

    #[test]
    fn path_with_small_h() {
        let g = Graph::path(120);
        let bits = place(&g, 3, 5);
        let cfg = SparsePipelineConfig::for_graph(&g, 3);
        let out = sparse_randomness_decomposition(&g, &bits, &cfg);
        let d = out.decomposition.expect("path pipeline succeeds");
        d.validate(&g).unwrap();
        assert!(out.cluster_count >= 1);
    }

    #[test]
    fn single_cluster_graph_is_isolated_case() {
        // Small diameter graph => one Voronoi cluster => isolated => color 0.
        let g = Graph::complete(12);
        let bits = place(&g, 1, 7);
        let cfg = SparsePipelineConfig::for_graph(&g, 1);
        let out = sparse_randomness_decomposition(&g, &bits, &cfg);
        assert_eq!(out.cluster_count, 1);
        assert_eq!(out.isolated_clusters, 1);
        let d = out.decomposition.unwrap();
        let q = d.validate(&g).unwrap();
        assert_eq!(q.colors, 1);
        assert_eq!(out.bits_consumed, 0, "isolated clusters need no bits");
    }

    #[test]
    #[should_panic]
    fn uncovered_placement_rejected() {
        let g = Graph::path(50);
        let bits = SparseBits::from_pairs([(0, true)]); // only one holder
        let cfg = SparsePipelineConfig::for_graph(&g, 1);
        let _ = sparse_randomness_decomposition(&g, &bits, &cfg);
    }

    #[test]
    fn diameter_scales_with_h() {
        // The Theorem 3.1 diameter is h·polylog: larger h, larger clusters.
        let g = Graph::path(200);
        let bits1 = place(&g, 1, 9);
        let bits4 = place(&g, 4, 9);
        let cfg1 = SparsePipelineConfig::for_graph(&g, 1);
        let cfg4 = SparsePipelineConfig::for_graph(&g, 4);
        let out1 = sparse_randomness_decomposition(&g, &bits1, &cfg1);
        let out4 = sparse_randomness_decomposition(&g, &bits4, &cfg4);
        assert!(out4.max_voronoi_radius >= out1.max_voronoi_radius);
    }

    #[test]
    fn strong_diameter_variant_on_dense_placement() {
        // Theorem 3.7 needs Θ(log⁴ n)-ish bits per cluster; with h = 0-ish
        // placements (every node a holder) small graphs can satisfy it; with
        // sparse placements the shortfall fallback still yields a valid
        // decomposition (late deterministic self-sampling).
        let mut p = SplitMix64::new(73);
        let g = Graph::gnp_connected(80, 0.04, &mut p);
        let holders: Vec<usize> = g.nodes().collect();
        let mut src = PrngSource::seeded(3);
        let bits = SparseBits::place(&holders, &mut src);
        let (out, _shortfall) = sparse_strong_diameter_decomposition(&g, &bits, 1);
        if let Some(d) = out.decomposition {
            let q = d.validate(&g).unwrap();
            let cfg = SharedDecompConfig::for_graph(&g);
            assert!(q.max_diameter <= 2 * cfg.max_cluster_radius());
        }
    }
}
