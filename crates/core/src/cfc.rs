//! Conflict-free hypergraph multicoloring under limited independence
//! (Theorem 3.5).
//!
//! [GKM17] showed that network decomposition reduces to *conflict-free
//! hypergraph multicoloring*: given a hypergraph with `poly(n)` hyperedges
//! grouped in `log n` size classes (class `i` holds edges of size
//! `(2^{i-1}, 2^i]`), assign every vertex a *set* of colors so that each
//! hyperedge has some color worn by exactly one of its vertices. The paper's
//! Theorem 3.5 handles the large classes with randomness: mark vertices with
//! probability `Θ(log n)/2^i` using `Θ(log² n)`-wise independent bits; the
//! k-wise Chernoff bound [SSS95] leaves each big hyperedge with `Θ(log n)`
//! marked vertices w.h.p., reducing to the small-hyperedge case, which is
//! solved deterministically.
//!
//! Our deterministic small-hyperedge solver is the *last-writer greedy*
//! (DESIGN.md §4, substitution 2): process vertices in a fixed order; when a
//! vertex completes a hyperedge it adds one fresh color chosen to avoid
//! (i) all colors worn by the edge's other vertices and (ii) the witness
//! colors of already-satisfied hyperedges through it. Both constraint sets
//! are `poly(edge size · degree)`, so the palette stays polylogarithmic for
//! polylog-size hyperedges, matching [GKM17]'s interface.

use locality_rand::kwise::{flat_index, KWiseBits};
use std::collections::BTreeSet;

/// A hypergraph on vertices `0..n`.
///
/// # Example
/// ```
/// use locality_core::cfc::Hypergraph;
/// let hg = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2, 3]]).unwrap();
/// assert_eq!(hg.edge_count(), 2);
/// assert_eq!(hg.size_class(0), 1);
/// assert_eq!(hg.size_class(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    n: usize,
    edges: Vec<Vec<usize>>,
}

impl Hypergraph {
    /// Build from explicit edges (each nonempty, members deduplicated).
    ///
    /// Returns `None` if an edge is empty or references a vertex `≥ n`.
    pub fn new(n: usize, edges: Vec<Vec<usize>>) -> Option<Self> {
        let mut normalized = Vec::with_capacity(edges.len());
        for e in edges {
            let mut e: Vec<usize> = e;
            e.sort_unstable();
            e.dedup();
            if e.is_empty() || e.iter().any(|&v| v >= n) {
                return None;
            }
            normalized.push(e);
        }
        Some(Self {
            n,
            edges: normalized,
        })
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of hyperedges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The members of edge `e`, sorted.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: usize) -> &[usize] {
        &self.edges[e]
    }

    /// Size class of edge `e`: the `i ≥ 0` with `|e| ∈ (2^{i-1}, 2^i]`
    /// (sizes 1 → 0, 2 → 1, 3..4 → 2, 5..8 → 3, …).
    pub fn size_class(&self, e: usize) -> u32 {
        let s = self.edges[e].len() as u64;
        64 - (s - 1).leading_zeros()
    }
}

/// A multicoloring: each vertex wears a set of `(class, color)` pairs —
/// classes use disjoint palettes, as in the paper.
pub type Multicoloring = Vec<BTreeSet<(u32, usize)>>;

/// Check the conflict-free property: every edge must have some
/// `(class, color)` worn by *exactly one* of its members. Returns the
/// violating edges.
///
/// # Panics
/// Panics if `coloring.len()` differs from the vertex count.
pub fn violations(hg: &Hypergraph, coloring: &Multicoloring) -> Vec<usize> {
    assert_eq!(
        coloring.len(),
        hg.vertex_count(),
        "one color set per vertex"
    );
    (0..hg.edge_count())
        .filter(|&e| {
            let mut counts: std::collections::BTreeMap<(u32, usize), usize> =
                std::collections::BTreeMap::new();
            for &v in hg.edge(e) {
                for &c in &coloring[v] {
                    *counts.entry(c).or_insert(0) += 1;
                }
            }
            !counts.values().any(|&k| k == 1)
        })
        .collect()
}

/// Deterministic conflict-free multicoloring by the last-writer greedy.
/// All colors are tagged with `class`. Returns the coloring and the palette
/// size used.
pub fn deterministic_small_solver(
    n: usize,
    edges: &[Vec<usize>],
    class: u32,
) -> (Multicoloring, usize) {
    let mut coloring: Multicoloring = vec![BTreeSet::new(); n];
    let mut witness: Vec<Option<(usize, usize)>> = vec![None; edges.len()];
    let mut edges_through: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (e, members) in edges.iter().enumerate() {
        for &v in members {
            edges_through[v].push(e);
        }
    }
    let mut palette = 0usize;

    // Process vertices in index order ("by identifier"); a vertex acts for
    // every edge whose maximum member it is (i.e. it is processed last).
    for v in 0..n {
        for &e in &edges_through[v] {
            // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
            if *edges[e].last().expect("nonempty") != v {
                continue;
            }
            // Forbidden: colors worn inside e by others, witness colors of
            // satisfied edges through v held by a different vertex, and
            // colors v already wears (each new color is a clean witness).
            let mut forbidden: BTreeSet<usize> = BTreeSet::new();
            for &u in &edges[e] {
                if u != v {
                    forbidden.extend(coloring[u].iter().map(|&(_, c)| c));
                }
            }
            for &f in &edges_through[v] {
                if let Some((w, c)) = witness[f] {
                    if w != v {
                        forbidden.insert(c);
                    }
                }
            }
            forbidden.extend(coloring[v].iter().map(|&(_, c)| c));
            let c = (0..).find(|c| !forbidden.contains(c)).expect("free color"); // audit: allow(panic) -- unbounded color search: fewer forbidden colors than candidates
            palette = palette.max(c + 1);
            coloring[v].insert((class, c));
            witness[e] = Some((v, c));
        }
    }
    (coloring, palette)
}

/// Per-size-class diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassStats {
    /// The size class index.
    pub class: u32,
    /// Edges in the class.
    pub edges: usize,
    /// Whether the class went through k-wise marking.
    pub marked: bool,
    /// Minimum marked-set size over the class's edges (post-marking).
    pub min_marked: usize,
    /// Maximum marked-set size.
    pub max_marked: usize,
    /// Palette size used by the deterministic solver.
    pub palette: usize,
}

/// Outcome of a Theorem 3.5 run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfcOutcome {
    /// The multicoloring.
    pub coloring: Multicoloring,
    /// Edges violating conflict-freeness (empty = success).
    pub violations: Vec<usize>,
    /// Per-class diagnostics.
    pub class_stats: Vec<ClassStats>,
    /// Seed bits of the k-wise family (the only randomness used).
    pub random_bits: u64,
}

/// Theorem 3.5: conflict-free multicoloring with `poly(log n)`-wise
/// independent bits. Classes with edges of size `≤ small_threshold` go
/// straight to the deterministic solver; larger classes are first reduced by
/// k-wise marking with probability `min(1, mark_factor·log n / 2^i)`.
///
/// # Panics
/// Panics if `mark_factor == 0`.
pub fn conflict_free_multicolor(
    hg: &Hypergraph,
    kw: &KWiseBits,
    small_threshold: usize,
    mark_factor: u64,
) -> CfcOutcome {
    assert!(mark_factor >= 1, "mark_factor must be positive");
    let n = hg.vertex_count();
    let log = locality_graph::Graph::empty(n.max(2)).log2_n() as u64;
    let mut coloring: Multicoloring = vec![BTreeSet::new(); n];
    let mut class_stats = Vec::new();

    let max_class = (0..hg.edge_count()).map(|e| hg.size_class(e)).max();
    let Some(max_class) = max_class else {
        return CfcOutcome {
            coloring,
            violations: Vec::new(),
            class_stats,
            random_bits: kw.seed_bits(),
        };
    };

    for class in 0..=max_class {
        let class_edges: Vec<usize> = (0..hg.edge_count())
            .filter(|&e| hg.size_class(e) == class)
            .collect();
        if class_edges.is_empty() {
            continue;
        }
        let size_bound = 1usize << class;
        let (restricted, marked) = if size_bound <= small_threshold {
            let r: Vec<Vec<usize>> = class_edges.iter().map(|&e| hg.edge(e).to_vec()).collect();
            (r, false)
        } else {
            let num = (mark_factor * log).min(1u64 << class.min(62));
            let den = 1u64 << class.min(62);
            let is_marked =
                |v: usize| kw.bernoulli(flat_index(&[class as u64, v as u64]), num, den);
            let r: Vec<Vec<usize>> = class_edges
                .iter()
                .map(|&e| {
                    hg.edge(e)
                        .iter()
                        .copied()
                        .filter(|&v| is_marked(v))
                        .collect()
                })
                .collect();
            (r, true)
        };
        let min_marked = restricted.iter().map(Vec::len).min().unwrap_or(0);
        let max_marked = restricted.iter().map(Vec::len).max().unwrap_or(0);

        // Edges whose marked set is empty can never be satisfied within this
        // class; drop them from the solver (the final violation report will
        // surface them).
        let solvable: Vec<Vec<usize>> = restricted
            .iter()
            .filter(|e| !e.is_empty())
            .cloned()
            .collect();
        let (class_coloring, palette) = deterministic_small_solver(n, &solvable, class);
        for v in 0..n {
            coloring[v].extend(class_coloring[v].iter().copied());
        }
        class_stats.push(ClassStats {
            class,
            edges: class_edges.len(),
            marked,
            min_marked,
            max_marked,
            palette,
        });
    }

    let violations = violations(hg, &coloring);
    CfcOutcome {
        coloring,
        violations,
        class_stats,
        random_bits: kw.seed_bits(),
    }
}

/// A random hypergraph for the experiments: `m` edges, each of a size drawn
/// uniformly from `sizes`, members uniform without replacement.
///
/// # Panics
/// Panics if `sizes` is empty or contains a size outside `1..=n`.
pub fn random_hypergraph(
    n: usize,
    m: usize,
    sizes: &[usize],
    prng: &mut impl locality_rand::prng::Prng,
) -> Hypergraph {
    assert!(
        !sizes.is_empty() && sizes.iter().all(|&s| s >= 1 && s <= n),
        "invalid size list"
    );
    let edges = (0..m)
        .map(|_| {
            let s = sizes[prng.uniform_below(sizes.len() as u64) as usize];
            let mut members = BTreeSet::new();
            while members.len() < s {
                members.insert(prng.uniform_below(n as u64) as usize);
            }
            members.into_iter().collect()
        })
        .collect();
    Hypergraph::new(n, edges).expect("generated edges are valid") // audit: allow(panic) -- generated edges are validated in-range by the loop above
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_rand::prelude::*;

    #[test]
    fn hypergraph_construction() {
        assert!(Hypergraph::new(3, vec![vec![0, 1, 1]]).is_some()); // dedup
        assert!(Hypergraph::new(3, vec![vec![]]).is_none());
        assert!(Hypergraph::new(3, vec![vec![4]]).is_none());
    }

    #[test]
    fn size_classes() {
        let hg = Hypergraph::new(
            20,
            vec![
                vec![0],
                vec![0, 1],
                vec![0, 1, 2],
                (0..8).collect(),
                (0..9).collect(),
            ],
        )
        .unwrap();
        assert_eq!(hg.size_class(0), 0);
        assert_eq!(hg.size_class(1), 1);
        assert_eq!(hg.size_class(2), 2);
        assert_eq!(hg.size_class(3), 3);
        assert_eq!(hg.size_class(4), 4);
    }

    #[test]
    fn deterministic_solver_is_conflict_free() {
        let mut p = SplitMix64::new(81);
        let hg = random_hypergraph(60, 80, &[2, 3, 4, 5], &mut p);
        let edges: Vec<Vec<usize>> = (0..hg.edge_count()).map(|e| hg.edge(e).to_vec()).collect();
        let (coloring, palette) = deterministic_small_solver(60, &edges, 0);
        assert!(violations(&hg, &coloring).is_empty());
        assert!(palette >= 1);
    }

    #[test]
    fn deterministic_solver_palette_stays_modest() {
        let mut p = SplitMix64::new(83);
        let hg = random_hypergraph(100, 150, &[3, 4], &mut p);
        let edges: Vec<Vec<usize>> = (0..hg.edge_count()).map(|e| hg.edge(e).to_vec()).collect();
        let (_, palette) = deterministic_small_solver(100, &edges, 0);
        // O(s · Δ_H): with ~6 edges per vertex and s ≤ 4, far below 60.
        assert!(palette <= 60, "palette {palette}");
    }

    #[test]
    fn full_theorem_pipeline_succeeds() {
        let mut p = SplitMix64::new(85);
        // Big edges force the marking path.
        let hg = random_hypergraph(300, 60, &[2, 3, 40, 64], &mut p);
        let mut src = PrngSource::seeded(5);
        let kw = KWiseBits::from_source(32, &mut src).unwrap();
        let out = conflict_free_multicolor(&hg, &kw, 8, 2);
        assert!(
            out.violations.is_empty(),
            "violations: {:?}",
            out.violations
        );
        assert_eq!(out.random_bits, 32 * 61);
        let marked_classes: Vec<_> = out.class_stats.iter().filter(|c| c.marked).collect();
        assert!(!marked_classes.is_empty());
        for c in marked_classes {
            assert!(c.min_marked >= 1, "class {}: empty marked edge", c.class);
            assert!(
                c.max_marked < 64,
                "class {}: marking failed to shrink ({})",
                c.class,
                c.max_marked
            );
        }
    }

    #[test]
    fn empty_hypergraph() {
        let hg = Hypergraph::new(5, vec![]).unwrap();
        let mut src = PrngSource::seeded(1);
        let kw = KWiseBits::from_source(4, &mut src).unwrap();
        let out = conflict_free_multicolor(&hg, &kw, 4, 2);
        assert!(out.violations.is_empty());
    }

    #[test]
    fn singleton_edges_are_trivially_witnessed() {
        let hg = Hypergraph::new(3, vec![vec![0], vec![1], vec![2], vec![0, 2]]).unwrap();
        let edges: Vec<Vec<usize>> = (0..4).map(|e| hg.edge(e).to_vec()).collect();
        let (coloring, _) = deterministic_small_solver(3, &edges, 0);
        assert!(violations(&hg, &coloring).is_empty());
    }

    #[test]
    fn violations_detected() {
        let hg = Hypergraph::new(2, vec![vec![0, 1]]).unwrap();
        let mut coloring: Multicoloring = vec![BTreeSet::new(); 2];
        coloring[0].insert((0, 1));
        coloring[1].insert((0, 1));
        assert_eq!(violations(&hg, &coloring), vec![0]);
        let empty: Multicoloring = vec![BTreeSet::new(); 2];
        assert_eq!(violations(&hg, &empty), vec![0]);
    }

    #[test]
    fn marking_concentration_shape() {
        // The k-wise Chernoff working surface (experiment F4): edges of size
        // 128 keep Θ(log n) marked vertices.
        let mut p = SplitMix64::new(87);
        let hg = random_hypergraph(600, 40, &[128], &mut p);
        let mut src = PrngSource::seeded(9);
        let kw = KWiseBits::from_source(64, &mut src).unwrap();
        let out = conflict_free_multicolor(&hg, &kw, 8, 4);
        let stats = out
            .class_stats
            .iter()
            .find(|c| c.marked)
            .expect("size-128 class is marked");
        assert!(stats.min_marked >= 5, "min {}", stats.min_marked);
        assert!(stats.max_marked <= 100, "max {}", stats.max_marked);
    }
}
