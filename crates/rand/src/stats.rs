//! Empirical statistics helpers for validating randomness sources.
//!
//! These back the statistical tests throughout the workspace: bit-stream
//! bias, chi-square uniformity, serial correlation, and subset-parity bias
//! (the quantity an ε-biased space bounds).

/// Empirical bias of a bit sample: `|#ones/#total − 1/2|`.
///
/// # Panics
/// Panics on an empty sample.
pub fn bias(bits: &[bool]) -> f64 {
    assert!(!bits.is_empty(), "bias of an empty sample");
    let ones = bits.iter().filter(|&&b| b).count() as f64;
    (ones / bits.len() as f64 - 0.5).abs()
}

/// Pearson chi-square statistic against the uniform distribution over
/// `counts.len()` cells.
///
/// # Panics
/// Panics if `counts` is empty or all-zero.
pub fn chi_square_uniform(counts: &[u64]) -> f64 {
    assert!(!counts.is_empty(), "no cells");
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "no observations");
    let expected = total as f64 / counts.len() as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// A generous chi-square acceptance threshold: `df + 6·sqrt(2·df)`
/// (≈ six standard deviations above the mean — suitable for deterministic
/// regression tests that must never flake).
pub fn chi_square_threshold(cells: usize) -> f64 {
    let df = (cells - 1) as f64;
    df + 6.0 * (2.0 * df).sqrt()
}

/// Lag-1 serial correlation of a bit stream (≈ 0 for independent bits).
///
/// # Panics
/// Panics if the sample has fewer than 2 bits.
pub fn serial_correlation(bits: &[bool]) -> f64 {
    assert!(bits.len() >= 2, "need at least two bits");
    let x: Vec<f64> = bits.iter().map(|&b| b as u8 as f64).collect();
    let n = x.len() - 1;
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    let mut cov = 0.0;
    let mut var = 0.0;
    for i in 0..n {
        cov += (x[i] - mean) * (x[i + 1] - mean);
    }
    for v in &x {
        var += (v - mean) * (v - mean);
    }
    if var == 0.0 {
        return 1.0; // constant stream: maximally correlated
    }
    cov / var
}

/// Empirical parity bias of an indexed bit space over a fixed index subset,
/// sampled across seeds: `|P(⊕_{i∈S} bit_i = 1) − 1/2|`.
pub fn subset_parity_bias(parities: &[bool]) -> f64 {
    bias(parities)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn bias_of_fair_prng_is_small() {
        let mut src = PrngSource::seeded(1);
        let bits: Vec<bool> = (0..50_000).map(|_| src.next_bit()).collect();
        assert!(bias(&bits) < 0.01, "bias {}", bias(&bits));
    }

    #[test]
    fn bias_detects_constant_stream() {
        assert_eq!(bias(&[true; 100]), 0.5);
        assert_eq!(bias(&[false; 100]), 0.5);
    }

    #[test]
    fn chi_square_accepts_uniform_rejects_skewed() {
        let mut src = PrngSource::seeded(2);
        let mut counts = [0u64; 16];
        for _ in 0..32_000 {
            counts[BitSource::uniform_below(&mut src, 16) as usize] += 1;
        }
        let stat = chi_square_uniform(&counts);
        assert!(stat < chi_square_threshold(16), "chi2 {stat}");

        let skewed = [10_000u64, 1, 1, 1, 1, 1, 1, 1];
        assert!(chi_square_uniform(&skewed) > chi_square_threshold(8));
    }

    #[test]
    fn serial_correlation_flags_alternation_and_constants() {
        let alternating: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        assert!(serial_correlation(&alternating) < -0.9);
        assert_eq!(serial_correlation(&[true; 10]), 1.0);
        let mut src = PrngSource::seeded(3);
        let random: Vec<bool> = (0..50_000).map(|_| src.next_bit()).collect();
        assert!(serial_correlation(&random).abs() < 0.02);
    }

    #[test]
    fn kwise_words_pass_chi_square() {
        let mut src = PrngSource::seeded(4);
        let kw = KWiseBits::from_source(8, &mut src).unwrap();
        let mut counts = [0u64; 16];
        for i in 0..32_000u64 {
            counts[(kw.word(i) & 15) as usize] += 1;
        }
        let stat = chi_square_uniform(&counts);
        assert!(stat < chi_square_threshold(16), "chi2 {stat}");
    }

    #[test]
    fn eps_biased_subset_parities_are_fair_across_seeds() {
        // The defining guarantee, measured: over random seeds, the parity of
        // a fixed subset is near-fair.
        let subset = [2u64, 5, 11, 17];
        let parities: Vec<bool> = (0..4000u64)
            .map(|s| {
                let mut src = PrngSource::seeded(s * 13 + 1);
                let eb = EpsBiasedBits::from_source(&mut src).unwrap();
                subset.iter().fold(false, |p, &i| p ^ eb.bit(i))
            })
            .collect();
        assert!(subset_parity_bias(&parities) < 0.03);
    }

    #[test]
    fn geometric_tail_is_geometric() {
        let mut src = PrngSource::seeded(5);
        let n = 40_000u64;
        let mut ge3 = 0u64;
        for _ in 0..n {
            if src.geometric(40) >= 3 {
                ge3 += 1;
            }
        }
        // P(X >= 3) = 1/4.
        let rate = ge3 as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "tail rate {rate}");
    }
}
