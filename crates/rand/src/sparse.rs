//! Sparse private randomness (§3.1, direction (A)).
//!
//! "Some nodes `S ⊆ V` hold some bits of randomness, each holding just a
//! single bit, and for each node there is at least one node of `S` within
//! distance `h`." [`SparseBits`] records exactly that placement: the set of
//! holder node indices and their single independent bits. The graph-aware
//! side (choosing an `h`-dominating holder set, validating the covering
//! radius, harvesting bits along trees) lives in `locality-core::sparse`.

use crate::source::BitSource;
use std::collections::BTreeMap;

/// A placement of single independent random bits on a subset of nodes.
///
/// # Example
/// ```
/// use locality_rand::prelude::*;
/// let mut src = PrngSource::seeded(10);
/// let sb = SparseBits::place(&[0, 3, 9], &mut src);
/// assert_eq!(sb.holder_count(), 3);
/// assert!(sb.bit_of(3).is_some());
/// assert!(sb.bit_of(4).is_none());
/// assert_eq!(sb.total_bits(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseBits {
    bits: BTreeMap<usize, bool>,
}

impl SparseBits {
    /// Place one fresh independent bit on each listed holder node.
    ///
    /// Duplicate holders are collapsed (the last drawn bit wins), mirroring
    /// "each holding just a single bit".
    ///
    /// # Panics
    /// Panics if `src` exhausts.
    pub fn place(holders: &[usize], src: &mut impl BitSource) -> Self {
        let mut bits = BTreeMap::new();
        for &v in holders {
            bits.insert(v, src.next_bit());
        }
        Self { bits }
    }

    /// Build from explicit `(node, bit)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (usize, bool)>) -> Self {
        Self {
            bits: pairs.into_iter().collect(),
        }
    }

    /// The bit held by `node`, if it is a holder.
    pub fn bit_of(&self, node: usize) -> Option<bool> {
        self.bits.get(&node).copied()
    }

    /// Whether `node` holds a bit.
    pub fn is_holder(&self, node: usize) -> bool {
        self.bits.contains_key(&node)
    }

    /// Number of holder nodes.
    pub fn holder_count(&self) -> usize {
        self.bits.len()
    }

    /// Total bits of randomness in the whole network — the paper's headline
    /// resource measure.
    pub fn total_bits(&self) -> u64 {
        self.bits.len() as u64
    }

    /// Iterate `(node, bit)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        self.bits.iter().map(|(&v, &b)| (v, b))
    }

    /// The holder node indices in increasing order.
    pub fn holders(&self) -> Vec<usize> {
        self.bits.keys().copied().collect()
    }
}

impl FromIterator<(usize, bool)> for SparseBits {
    fn from_iter<I: IntoIterator<Item = (usize, bool)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn place_assigns_each_holder_one_bit() {
        let mut src = PrngSource::seeded(0);
        let sb = SparseBits::place(&[5, 1, 8], &mut src);
        assert_eq!(sb.holder_count(), 3);
        assert_eq!(src.bits_drawn(), 3);
        for v in [1, 5, 8] {
            assert!(sb.is_holder(v));
        }
        assert!(!sb.is_holder(0));
    }

    #[test]
    fn duplicates_collapse() {
        let mut src = PrngSource::seeded(1);
        let sb = SparseBits::place(&[2, 2, 2], &mut src);
        assert_eq!(sb.holder_count(), 1);
        assert_eq!(sb.total_bits(), 1);
    }

    #[test]
    fn holders_sorted() {
        let sb = SparseBits::from_pairs([(9, true), (1, false), (4, true)]);
        assert_eq!(sb.holders(), vec![1, 4, 9]);
    }

    #[test]
    fn iter_round_trips() {
        let pairs = [(0, true), (7, false)];
        let sb: SparseBits = pairs.into_iter().collect();
        let back: Vec<_> = sb.iter().collect();
        assert_eq!(back, vec![(0, true), (7, false)]);
    }

    #[test]
    fn empty_placement() {
        let sb = SparseBits::default();
        assert_eq!(sb.holder_count(), 0);
        assert_eq!(sb.bit_of(0), None);
    }
}
