//! Globally shared randomness (§3.2, direction (C)).
//!
//! A [`SharedSeed`] is a short, public string of truly random bits known to
//! every node — the paper's "poly(log n) bits of global shared randomness
//! (and no private randomness)". Nodes may deterministically *expand* the seed
//! into k-wise independent families ([`SharedSeed::kwise`]) or ε-biased spaces
//! ([`SharedSeed::eps_biased`]); both expansions are pure functions of the
//! seed, so no hidden randomness is created.

use crate::epsbias::EpsBiasedBits;
use crate::kwise::KWiseBits;
use crate::prng::Prng;
use crate::source::{BitSource, BitTape, Exhausted};

/// A short public random string shared by the entire network.
///
/// # Example
/// ```
/// use locality_rand::prelude::*;
/// let mut sm = SplitMix64::new(11);
/// let seed = SharedSeed::from_prng(512, &mut sm);
/// assert_eq!(seed.len(), 512);
/// // Every node expands the same seed to the same 8-wise family:
/// let a = seed.kwise(8).unwrap();
/// let b = seed.kwise(8).unwrap();
/// assert_eq!(a.bit(99), b.bit(99));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedSeed {
    bits: Vec<bool>,
}

impl SharedSeed {
    /// Wrap an explicit bit string.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// Sample a fresh seed of `len` bits from a PRNG (the experiment driver's
    /// stand-in for nature's coin flips).
    pub fn from_prng(len: usize, prng: &mut impl Prng) -> Self {
        let bits = (0..len).map(|_| prng.next_u64() & 1 == 1).collect();
        Self { bits }
    }

    /// Sample a fresh seed of `len` bits from a metered source.
    ///
    /// # Panics
    /// Panics if `src` exhausts before `len` bits.
    pub fn draw_from(src: &mut impl BitSource, len: usize) -> Self {
        Self {
            bits: (0..len).map(|_| src.next_bit()).collect(),
        }
    }

    /// Seed length in bits — the network's entire randomness budget.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the seed is empty (a deterministic algorithm).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// View the seed as a consumable tape (fresh cursor each call).
    pub fn tape(&self) -> BitTape {
        BitTape::from_bits(self.bits.clone())
    }

    /// A sub-seed over bit positions `start..end` (used to give disjoint
    /// phases their own independent budget).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> SharedSeed {
        SharedSeed {
            bits: self.bits[start..end].to_vec(),
        }
    }

    /// Deterministically expand the seed prefix into a k-wise independent
    /// family (consuming `61·k` seed bits).
    ///
    /// # Errors
    /// Returns [`Exhausted`] if the seed is shorter than `61·k` bits.
    pub fn kwise(&self, k: usize) -> Result<KWiseBits, Exhausted> {
        KWiseBits::from_source(k, &mut self.tape())
    }

    /// Deterministically expand the seed prefix into an ε-biased space
    /// (consuming 128 seed bits).
    ///
    /// # Errors
    /// Returns [`Exhausted`] if the seed is shorter than 128 bits.
    pub fn eps_biased(&self) -> Result<EpsBiasedBits, Exhausted> {
        EpsBiasedBits::from_source(&mut self.tape())
    }

    /// Enumerate every seed of length `len` (for brute-force derandomization,
    /// Lemma 4.1). The iterator yields `2^len` seeds.
    ///
    /// # Panics
    /// Panics if `len > 30` (the enumeration would not terminate in practice).
    pub fn enumerate_all(len: usize) -> impl Iterator<Item = SharedSeed> {
        assert!(len <= 30, "enumerate_all: seed space 2^{len} too large");
        (0u64..(1 << len)).map(move |v| SharedSeed {
            bits: (0..len).map(|i| (v >> i) & 1 == 1).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::SplitMix64;

    #[test]
    fn expansion_is_deterministic() {
        let mut sm = SplitMix64::new(4);
        let seed = SharedSeed::from_prng(400, &mut sm);
        let kw1 = seed.kwise(6).unwrap();
        let kw2 = seed.kwise(6).unwrap();
        for i in 0..100 {
            assert_eq!(kw1.bit(i), kw2.bit(i));
        }
        let eb1 = seed.eps_biased().unwrap();
        let eb2 = seed.eps_biased().unwrap();
        for i in 1..100 {
            assert_eq!(eb1.bit(i), eb2.bit(i));
        }
    }

    #[test]
    fn too_short_seed_fails_loudly() {
        let seed = SharedSeed::from_bits(vec![true; 60]);
        assert!(seed.kwise(1).is_err());
        assert!(seed.eps_biased().is_err());
        let seed = SharedSeed::from_bits(vec![true; 61]);
        assert!(seed.kwise(1).is_ok());
    }

    #[test]
    fn slice_gives_disjoint_budgets() {
        let mut sm = SplitMix64::new(5);
        let seed = SharedSeed::from_prng(200, &mut sm);
        let a = seed.slice(0, 100);
        let b = seed.slice(100, 200);
        assert_eq!(a.len(), 100);
        assert_eq!(b.len(), 100);
        assert_ne!(a.tape().as_slice(), b.tape().as_slice());
    }

    #[test]
    fn enumerate_all_covers_space() {
        let seeds: Vec<_> = SharedSeed::enumerate_all(4).collect();
        assert_eq!(seeds.len(), 16);
        // All distinct.
        for i in 0..seeds.len() {
            for j in 0..i {
                assert_ne!(seeds[i], seeds[j]);
            }
        }
    }

    #[test]
    fn empty_seed_is_deterministic_algorithm() {
        let seed = SharedSeed::from_bits(vec![]);
        assert!(seed.is_empty());
        assert_eq!(seed.len(), 0);
        assert!(seed.kwise(1).is_err());
    }

    #[test]
    fn tape_is_fresh_per_call() {
        let seed = SharedSeed::from_bits(vec![true, false, true]);
        let mut t1 = seed.tape();
        t1.next_bit();
        let mut t2 = seed.tape();
        assert!(t2.next_bit(), "second tape must start at the beginning");
    }
}
