//! Deterministic pseudo-random generators used to *model* unbounded
//! randomness.
//!
//! The workspace never uses OS entropy: every experiment is reproducible from
//! an explicit `u64` seed. Two classic generators are provided:
//! [`SplitMix64`] (seeding, splitting) and [`Xoshiro256StarStar`] (bulk
//! stream). Both are implemented from the public-domain reference algorithms.

/// A deterministic stream of 64-bit words.
///
/// # Example
/// ```
/// use locality_rand::prng::{Prng, SplitMix64};
/// let mut g = SplitMix64::new(1);
/// let (a, b) = (g.next_u64(), g.next_u64());
/// assert_ne!(a, b);
/// ```
pub trait Prng {
    /// Produce the next 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Produce a uniform value in `0..n`.
    ///
    /// Uses Lemire-style rejection so the result is exactly uniform.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    fn uniform_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "uniform_below: n must be positive");
        // Rejection sampling over the top `2^64 - (2^64 mod n)` values.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Produce a uniform `f64` in `[0, 1)`.
    fn uniform_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// SplitMix64: tiny, fast, and ideal for deriving independent seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive an independent child seed (used to fan out per-node streams).
    pub fn split(&mut self) -> u64 {
        self.next_u64()
    }
}

impl Prng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0x5EED_5EED_5EED_5EED)
    }
}

/// Xoshiro256**: the workhorse stream generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Create a generator, expanding the 64-bit seed via [`SplitMix64`]
    /// (the initialization recommended by the xoshiro authors).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // All-zero state is invalid; SplitMix64 cannot produce 4 zero words
        // from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl Prng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl Default for Xoshiro256StarStar {
    fn default() -> Self {
        Self::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_seed_sensitivity() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn xoshiro_reference_stability() {
        // Regression pin: the stream for a fixed seed must never change,
        // otherwise every experiment in the repo silently changes.
        let mut g = Xoshiro256StarStar::new(12345);
        let first: Vec<u64> = (0..4).map(|_| g.next_u64()).collect();
        let mut h = Xoshiro256StarStar::new(12345);
        let again: Vec<u64> = (0..4).map(|_| h.next_u64()).collect();
        assert_eq!(first, again);
        assert!(first.iter().any(|&x| x != 0));
    }

    #[test]
    fn uniform_below_is_in_range_and_hits_all_values() {
        let mut g = Xoshiro256StarStar::new(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = g.uniform_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut g = Xoshiro256StarStar::new(3);
        for _ in 0..1000 {
            let x = g.uniform_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic]
    fn uniform_below_zero_panics() {
        let mut g = SplitMix64::new(0);
        let _ = g.uniform_below(0);
    }

    #[test]
    fn uniform_below_mean_is_plausible() {
        let mut g = Xoshiro256StarStar::new(11);
        let n = 100u64;
        let samples = 20_000;
        let sum: u64 = (0..samples).map(|_| g.uniform_below(n)).sum();
        let mean = sum as f64 / samples as f64;
        // True mean 49.5, std of the estimate ~0.2.
        assert!((mean - 49.5).abs() < 2.0, "mean {mean} too far from 49.5");
    }
}
