//! k-wise independent bit spaces (§3.2 of the paper).
//!
//! The classic construction [AS04]: a uniformly random polynomial of degree
//! `k-1` over a prime field, evaluated at distinct points, yields k-wise
//! independent field elements — hence k-wise independent bits — from a seed of
//! only `k·⌈log p⌉` truly random bits. The paper uses this to show that
//! `poly(log n)`-wise independence (Theorem 3.5) and hence `poly(log n)` bits
//! of shared randomness suffice for network decomposition.
//!
//! We use the Mersenne prime `p = 2^61 − 1`, so a `KWiseBits` expands a seed
//! of `61·k` bits into `p − 1 ≈ 2.3·10^18` addressable pseudo-random values of
//! which any `k` are exactly independent (up to the `2^-61` bias of mapping a
//! field element to a bit).

use crate::source::{BitSource, Exhausted};

/// The field modulus `2^61 − 1` (a Mersenne prime).
pub const MERSENNE61: u64 = (1 << 61) - 1;

/// Multiply two field elements modulo `2^61 − 1`.
#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    let prod = a as u128 * b as u128;
    // Mersenne reduction: x = hi * 2^61 + lo ≡ hi + lo (mod 2^61 − 1).
    let lo = (prod & MERSENNE61 as u128) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE61 {
        s -= MERSENNE61;
    }
    s
}

#[inline]
fn add_mod(a: u64, b: u64) -> u64 {
    let s = a + b;
    if s >= MERSENNE61 {
        s - MERSENNE61
    } else {
        s
    }
}

/// A family of k-wise independent random values addressed by index.
///
/// Indices are points of GF(2^61 − 1); each index yields a field element
/// (`word`), a fair bit (`bit`), a bounded uniform (`uniform_below`), or a
/// Bernoulli trial (`bernoulli`). Any `k` *distinct* indices are mutually
/// independent; no randomness beyond the seed is ever consumed.
///
/// # Example
/// ```
/// use locality_rand::prelude::*;
/// let mut seed_src = PrngSource::seeded(1);
/// let kw = KWiseBits::from_source(8, &mut seed_src).unwrap();
/// assert_eq!(kw.k(), 8);
/// assert_eq!(kw.seed_bits(), 8 * 61);
/// let _ = kw.bit(42);
/// let _ = kw.bernoulli(42, 1, 3); // Pr ≈ 1/3, same index reproducible
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWiseBits {
    coeffs: Vec<u64>,
}

impl KWiseBits {
    /// Build from explicit coefficients (each reduced mod `p`).
    ///
    /// # Panics
    /// Panics if `coeffs` is empty.
    pub fn from_coefficients(coeffs: Vec<u64>) -> Self {
        assert!(
            !coeffs.is_empty(),
            "k-wise family needs k >= 1 coefficients"
        );
        let coeffs = coeffs.into_iter().map(|c| c % MERSENNE61).collect();
        Self { coeffs }
    }

    /// Draw the `61·k`-bit seed from a bit source.
    ///
    /// # Errors
    /// Returns [`Exhausted`] if the source has fewer than `61·k` bits, which
    /// is precisely how "not enough shared randomness" manifests.
    pub fn from_source(k: usize, src: &mut impl BitSource) -> Result<Self, Exhausted> {
        assert!(k >= 1, "k-wise family needs k >= 1");
        let mut coeffs = Vec::with_capacity(k);
        for _ in 0..k {
            coeffs.push(src.next_bits(61)? % MERSENNE61);
        }
        Ok(Self { coeffs })
    }

    /// The independence parameter `k`.
    pub fn k(&self) -> usize {
        self.coeffs.len()
    }

    /// Number of truly random seed bits this family consumed.
    pub fn seed_bits(&self) -> u64 {
        61 * self.coeffs.len() as u64
    }

    /// Evaluate the polynomial at point `index + 1` (avoiding the fixed point
    /// 0 where the constant coefficient would leak alone is unnecessary, but
    /// using `index + 1` keeps all evaluation points nonzero and distinct).
    ///
    /// Returns a value uniform in `0..p`, k-wise independently across indices.
    pub fn word(&self, index: u64) -> u64 {
        let x = (index % (MERSENNE61 - 1)) + 1;
        // Horner evaluation.
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = add_mod(mul_mod(acc, x), c);
        }
        acc
    }

    /// A fair bit for `index` (bias `< 2^-60` from the odd modulus).
    pub fn bit(&self, index: u64) -> bool {
        self.word(index) & 1 == 1
    }

    /// A uniform value in `0..n` for `index` (bias `≤ n/p`).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn uniform_below(&self, index: u64, n: u64) -> u64 {
        assert!(n > 0, "uniform_below: n must be positive");
        self.word(index) % n
    }

    /// Bernoulli trial with probability `num/den` for `index`.
    ///
    /// # Panics
    /// Panics if `den == 0` or `num > den`.
    pub fn bernoulli(&self, index: u64, num: u64, den: u64) -> bool {
        assert!(den > 0 && num <= den, "bernoulli: invalid probability");
        let threshold = ((num as u128 * MERSENNE61 as u128) / den as u128) as u64;
        self.word(index) < threshold
    }

    /// A capped geometric(1/2) variable for `index`, built from the bits of
    /// the word at `index` and, if needed, follow-on indices in a disjoint
    /// index band (`index + j·STRIDE`). Consumes no new randomness.
    ///
    /// With `cap ≤ 60` a single word suffices, so values for `k` distinct
    /// indices remain k-wise independent.
    ///
    /// # Panics
    /// Panics if `cap == 0` or `cap > 60`.
    pub fn geometric(&self, index: u64, cap: u32) -> u32 {
        assert!((1..=60).contains(&cap), "geometric: cap must be in 1..=60");
        let w = self.word(index);
        for k in 1..=cap {
            if (w >> (k - 1)) & 1 == 0 {
                return k;
            }
        }
        cap
    }
}

/// Combine structured coordinates into a flat k-wise index.
///
/// Distributed algorithms index randomness by tuples such as
/// `(phase, epoch, node)`; this packs them injectively (for coordinates below
/// `2^20`) so distinct tuples map to distinct evaluation points.
///
/// # Example
/// ```
/// use locality_rand::kwise::flat_index;
/// assert_ne!(flat_index(&[1, 2, 3]), flat_index(&[3, 2, 1]));
/// ```
pub fn flat_index(coords: &[u64]) -> u64 {
    const BASE: u64 = 1 << 20;
    let mut acc = 0u64;
    for &c in coords {
        debug_assert!(c < BASE, "flat_index coordinate out of range");
        acc = acc.wrapping_mul(BASE).wrapping_add(c);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn mul_mod_agrees_with_u128() {
        let cases = [
            (0, 0),
            (1, MERSENNE61 - 1),
            (MERSENNE61 - 1, MERSENNE61 - 1),
            (123_456_789, 987_654_321),
            (1 << 60, (1 << 60) + 5),
        ];
        for (a, b) in cases {
            let expect = ((a as u128 * b as u128) % MERSENNE61 as u128) as u64;
            assert_eq!(mul_mod(a, b), expect, "a={a} b={b}");
        }
    }

    #[test]
    fn word_is_deterministic_per_index() {
        let kw = KWiseBits::from_coefficients(vec![3, 5, 7]);
        assert_eq!(kw.word(10), kw.word(10));
        assert_eq!(kw.k(), 3);
    }

    #[test]
    fn seed_bits_accounting() {
        let mut src = PrngSource::seeded(8);
        let kw = KWiseBits::from_source(16, &mut src).unwrap();
        assert_eq!(kw.seed_bits(), 16 * 61);
        assert_eq!(src.bits_drawn(), 16 * 61);
    }

    #[test]
    fn insufficient_seed_is_reported() {
        let mut tape = BitTape::from_bits(vec![true; 100]);
        let err = KWiseBits::from_source(2, &mut tape);
        assert!(
            err.is_err(),
            "100 bits cannot seed a 2-wise (122-bit) family"
        );
    }

    /// Exhaustive k-wise independence check over a small prime field.
    ///
    /// The construction is identical in structure (random degree-(k-1)
    /// polynomial, Horner evaluation), so verifying it exhaustively mod 13
    /// validates the algebra used mod 2^61 − 1.
    #[test]
    fn pairwise_independence_exhaustive_small_field() {
        const P: u64 = 13;
        let eval = |coeffs: &[u64], x: u64| -> u64 {
            let mut acc = 0u64;
            for &c in coeffs.iter().rev() {
                acc = (acc * x + c) % P;
            }
            acc
        };
        // k = 2: over all P^2 seeds, (f(x1), f(x2)) for x1 != x2 (nonzero)
        // must be exactly uniform over P^2 pairs.
        let (x1, x2) = (3u64, 7u64);
        let mut counts = vec![0u32; (P * P) as usize];
        for c0 in 0..P {
            for c1 in 0..P {
                let coeffs = [c0, c1];
                let (v1, v2) = (eval(&coeffs, x1), eval(&coeffs, x2));
                counts[(v1 * P + v2) as usize] += 1;
            }
        }
        assert!(
            counts.iter().all(|&c| c == 1),
            "each value pair must occur exactly once"
        );
    }

    #[test]
    fn triple_wise_independence_exhaustive_small_field() {
        const P: u64 = 5;
        let eval = |coeffs: &[u64], x: u64| -> u64 {
            let mut acc = 0u64;
            for &c in coeffs.iter().rev() {
                acc = (acc * x + c) % P;
            }
            acc
        };
        let pts = [1u64, 2, 4];
        let mut counts = vec![0u32; (P * P * P) as usize];
        for c0 in 0..P {
            for c1 in 0..P {
                for c2 in 0..P {
                    let coeffs = [c0, c1, c2];
                    let idx = pts.iter().fold(0u64, |acc, &x| acc * P + eval(&coeffs, x));
                    counts[idx as usize] += 1;
                }
            }
        }
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn bits_are_roughly_fair() {
        let mut src = PrngSource::seeded(99);
        let kw = KWiseBits::from_source(4, &mut src).unwrap();
        let n = 50_000u64;
        let ones = (0..n).filter(|&i| kw.bit(i)).count() as f64;
        let expected = n as f64 / 2.0;
        assert!(
            (ones - expected).abs() < 6.0 * (expected / 2.0).sqrt(),
            "ones {ones} vs {expected}"
        );
    }

    #[test]
    fn pairwise_bit_correlation_is_small() {
        // Agreement between bit(i) and bit(i+1): one fresh pair per seed so
        // the samples are independent (within a seed, only pairwise
        // independence holds and pair events are mutually correlated).
        let trials = 4000u64;
        let agree = (0..trials)
            .filter(|&seed| {
                let mut src = PrngSource::seeded(seed);
                let kw = KWiseBits::from_source(2, &mut src).unwrap();
                kw.bit(seed) == kw.bit(seed + 1)
            })
            .count();
        let rate = agree as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.04, "agreement rate {rate}");
    }

    #[test]
    fn bernoulli_rate_matches() {
        let mut src = PrngSource::seeded(123);
        let kw = KWiseBits::from_source(8, &mut src).unwrap();
        let n = 60_000u64;
        let hits = (0..n).filter(|&i| kw.bernoulli(i, 1, 10)).count() as f64;
        let expected = n as f64 / 10.0;
        assert!(
            (hits - expected).abs() < 6.0 * (expected * 0.9).sqrt(),
            "hits {hits} vs {expected}"
        );
    }

    #[test]
    fn geometric_from_word_distribution() {
        let mut src = PrngSource::seeded(5);
        let kw = KWiseBits::from_source(4, &mut src).unwrap();
        let n = 60_000u64;
        let mut counts = [0u32; 6];
        for i in 0..n {
            let v = kw.geometric(i, 40) as usize;
            if v < counts.len() {
                counts[v] += 1;
            }
        }
        for (k, &c) in counts.iter().enumerate().take(4).skip(1) {
            let expected = n as f64 / (1u64 << k) as f64;
            let got = c as f64;
            assert!(
                (got - expected).abs() < 6.0 * expected.sqrt(),
                "geometric mass at {k}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn uniform_below_in_range() {
        let kw = KWiseBits::from_coefficients(vec![17, 29]);
        for i in 0..1000 {
            assert!(kw.uniform_below(i, 7) < 7);
        }
    }

    #[test]
    fn flat_index_injective_on_small_tuples() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for a in 0..10u64 {
            for b in 0..10u64 {
                for c in 0..10u64 {
                    assert!(seen.insert(flat_index(&[a, b, c])));
                }
            }
        }
    }
}
