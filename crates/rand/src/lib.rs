//! Randomness as a metered, restrictable resource.
//!
//! Ghaffari & Kuhn (PODC 2019) study *how much* randomness local distributed
//! graph algorithms actually need. That question only makes sense if random
//! bits are an explicit resource: every bit drawn must be observable, sources
//! must be exhaustible, and the three restricted regimes of the paper must be
//! constructible:
//!
//! 1. **Sparse private bits** (§3.1): a few nodes each hold a *single*
//!    independent bit — see [`sparse::SparseBits`].
//! 2. **Limited independence** (§3.2): the bits across the network are only
//!    k-wise independent — see [`kwise::KWiseBits`], built from a seed of
//!    `O(k log n)` truly random bits.
//! 3. **Shared randomness** (§3.2): the whole network shares `poly(log n)`
//!    bits and has no private randomness — see [`shared::SharedSeed`], with
//!    deterministic expanders into k-wise independent ([`kwise`]) or small-bias
//!    ([`epsbias`], Naor–Naor style) bit spaces.
//!
//! Unrestricted randomness is modelled by [`prng`] PRNG streams wrapped in a
//! metered [`source::BitSource`].
//!
//! # Example
//!
//! ```
//! use locality_rand::prelude::*;
//!
//! // A fully random, metered source.
//! let mut src = PrngSource::seeded(42);
//! let heads = src.next_bit();
//! let r = src.geometric(64); // Pr[r = k] = 2^-k, capped at 64 flips
//! assert!(r >= 1 && heads | true);
//! assert!(src.bits_drawn() >= 2);
//!
//! // poly(log n) shared bits, expanded k-wise independently.
//! let seed = SharedSeed::from_prng(256, &mut SplitMix64::new(7));
//! let kw = seed.kwise(4).unwrap(); // 4-wise independent bits
//! let _b = kw.bit(123456); // any index, no further randomness consumed
//! ```

// Bracketed citation keys ([EN16], [GKM17], ...) are bibliography
// references, not intra-doc links.
#![allow(rustdoc::broken_intra_doc_links)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epsbias;
pub mod geometric;
pub mod kwise;
pub mod prng;
pub mod shared;
pub mod source;
pub mod sparse;
pub mod stats;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::epsbias::EpsBiasedBits;
    pub use crate::kwise::KWiseBits;
    pub use crate::prng::{Prng, SplitMix64, Xoshiro256StarStar};
    pub use crate::shared::SharedSeed;
    pub use crate::source::{BitSource, BitTape, Exhausted, PrngSource};
    pub use crate::sparse::SparseBits;
}

pub use epsbias::EpsBiasedBits;
pub use kwise::KWiseBits;
pub use prng::{Prng, SplitMix64, Xoshiro256StarStar};
pub use shared::SharedSeed;
pub use source::{BitSource, BitTape, Exhausted, PrngSource};
pub use sparse::SparseBits;
