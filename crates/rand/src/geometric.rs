//! Exact arithmetic for truncated geometric distributions.
//!
//! The Elkin–Neiman clustering (Lemma 3.3, Theorem 3.6) draws cluster radii
//! from a geometric(1/2) distribution truncated at `cap` coin flips. The
//! method-of-conditional-expectations derandomizer
//! (`locality-core::decomposition::cond_expect`) needs the *exact*
//! distribution to compute pessimistic estimators, so we provide it here as
//! rational-free `f64` arithmetic plus exact dyadic helpers.

/// The distribution of [`crate::source::BitSource::geometric`]: flip fair
/// coins, return the index of the first tail, capped at `cap` flips.
///
/// `Pr[X = k] = 2^-k` for `1 ≤ k < cap` and `Pr[X = cap] = 2^-(cap-1)`.
///
/// # Example
/// ```
/// use locality_rand::geometric::TruncatedGeometric;
/// let g = TruncatedGeometric::new(3);
/// assert_eq!(g.pmf(1), 0.5);
/// assert_eq!(g.pmf(2), 0.25);
/// assert_eq!(g.pmf(3), 0.25); // cap absorbs the tail
/// let total: f64 = g.support().map(|k| g.pmf(k)).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncatedGeometric {
    cap: u32,
}

impl TruncatedGeometric {
    /// Create the distribution truncated at `cap` flips.
    ///
    /// # Panics
    /// Panics if `cap == 0` or `cap > 63` (dyadic masses would underflow).
    pub fn new(cap: u32) -> Self {
        assert!((1..=63).contains(&cap), "cap must be in 1..=63");
        Self { cap }
    }

    /// The truncation point.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// Support iterator `1..=cap`.
    pub fn support(&self) -> impl Iterator<Item = u32> {
        1..=self.cap
    }

    /// Probability mass at `k` (zero outside the support).
    pub fn pmf(&self, k: u32) -> f64 {
        if k < 1 || k > self.cap {
            0.0
        } else if k == self.cap {
            // Absorbs Pr[X >= cap] = 2^-(cap-1).
            1.0 / (1u64 << (self.cap - 1)) as f64
        } else {
            1.0 / (1u64 << k) as f64
        }
    }

    /// `Pr[X > k]`.
    pub fn tail(&self, k: u32) -> f64 {
        if k >= self.cap {
            0.0
        } else {
            1.0 / (1u64 << k) as f64
        }
    }

    /// `Pr[X ≤ k]`.
    pub fn cdf(&self, k: u32) -> f64 {
        1.0 - self.tail(k)
    }

    /// Expected value (approaches 2 as `cap → ∞`).
    pub fn mean(&self) -> f64 {
        self.support().map(|k| k as f64 * self.pmf(k)).sum()
    }

    /// Number of random bits consumed to sample value `k`
    /// (`k` flips below the cap, `cap` flips at the cap).
    pub fn bits_for(&self, k: u32) -> u32 {
        k.min(self.cap)
    }

    /// Memoize this distribution: precompute every pmf/cdf/tail value up to
    /// the cap so hot paths (the conditional-expectations derandomizer
    /// evaluates these millions of times with the same small arguments) pay a
    /// table lookup instead of shifts and divides.
    pub fn table(&self) -> TruncatedGeometricTable {
        TruncatedGeometricTable::new(self.cap)
    }
}

/// [`TruncatedGeometric`] with every mass memoized.
///
/// The support is tiny (`cap ≤ 63` values), so the whole distribution fits in
/// three small arrays; lookups are bounds-clamped exactly like the formula
/// versions (`pmf` is zero outside the support, `cdf` saturates at one,
/// `tail` at zero) and return **bit-identical** `f64`s — each entry is
/// produced by the corresponding [`TruncatedGeometric`] method, which the
/// tests pin.
///
/// # Example
/// ```
/// use locality_rand::geometric::TruncatedGeometric;
/// let g = TruncatedGeometric::new(8);
/// let t = g.table();
/// assert_eq!(t.pmf(3), g.pmf(3));
/// assert_eq!(t.cdf(20), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedGeometricTable {
    dist: TruncatedGeometric,
    /// `pmf[k]` for `k in 0..=cap`.
    pmf: Vec<f64>,
    /// `cdf[k]` for `k in 0..=cap`.
    cdf: Vec<f64>,
    /// `tail[k]` for `k in 0..=cap`.
    tail: Vec<f64>,
}

impl TruncatedGeometricTable {
    /// Build the memoized distribution truncated at `cap` flips.
    ///
    /// # Panics
    /// Panics if `cap == 0` or `cap > 63`, as [`TruncatedGeometric::new`].
    pub fn new(cap: u32) -> Self {
        let dist = TruncatedGeometric::new(cap);
        let pmf = (0..=cap).map(|k| dist.pmf(k)).collect();
        let cdf = (0..=cap).map(|k| dist.cdf(k)).collect();
        let tail = (0..=cap).map(|k| dist.tail(k)).collect();
        Self {
            dist,
            pmf,
            cdf,
            tail,
        }
    }

    /// The truncation point.
    pub fn cap(&self) -> u32 {
        self.dist.cap()
    }

    /// The underlying formula-evaluated distribution.
    pub fn dist(&self) -> &TruncatedGeometric {
        &self.dist
    }

    /// Probability mass at `k` (zero outside the support), via lookup.
    pub fn pmf(&self, k: u32) -> f64 {
        *self.pmf.get(k as usize).unwrap_or(&0.0)
    }

    /// `Pr[X ≤ k]`, via lookup (saturates at one above the cap).
    pub fn cdf(&self, k: u32) -> f64 {
        *self.cdf.get(k as usize).unwrap_or(&1.0)
    }

    /// `Pr[X > k]`, via lookup (saturates at zero above the cap).
    pub fn tail(&self, k: u32) -> f64 {
        *self.tail.get(k as usize).unwrap_or(&0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn pmf_sums_to_one() {
        for cap in [1, 2, 5, 10, 40, 63] {
            let g = TruncatedGeometric::new(cap);
            let total: f64 = g.support().map(|k| g.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-12, "cap {cap}: total {total}");
        }
    }

    #[test]
    fn cdf_tail_consistency() {
        let g = TruncatedGeometric::new(12);
        for k in 0..=13 {
            assert!((g.cdf(k) + g.tail(k) - 1.0).abs() < 1e-12);
        }
        assert_eq!(g.tail(12), 0.0);
        assert_eq!(g.tail(20), 0.0);
    }

    #[test]
    fn mean_approaches_two() {
        let g = TruncatedGeometric::new(40);
        assert!((g.mean() - 2.0).abs() < 1e-9);
        let tiny = TruncatedGeometric::new(1);
        assert_eq!(tiny.mean(), 1.0);
    }

    #[test]
    fn sampler_matches_pmf() {
        let g = TruncatedGeometric::new(6);
        let mut src = PrngSource::seeded(2);
        let n = 60_000;
        let mut counts = [0u32; 8];
        for _ in 0..n {
            counts[src.geometric(6) as usize] += 1;
        }
        for k in g.support() {
            let expected = n as f64 * g.pmf(k);
            let got = counts[k as usize] as f64;
            assert!(
                (got - expected).abs() < 6.0 * expected.sqrt() + 10.0,
                "k={k}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn bits_accounting() {
        let g = TruncatedGeometric::new(5);
        assert_eq!(g.bits_for(1), 1);
        assert_eq!(g.bits_for(5), 5);
        assert_eq!(g.bits_for(9), 5);
    }

    #[test]
    #[should_panic]
    fn zero_cap_rejected() {
        let _ = TruncatedGeometric::new(0);
    }

    #[test]
    fn table_is_bit_identical_to_formulas() {
        for cap in [1u32, 2, 5, 12, 40, 63] {
            let g = TruncatedGeometric::new(cap);
            let t = g.table();
            assert_eq!(t.cap(), cap);
            assert_eq!(t.dist(), &g);
            // Inside the support, at the boundary, and well past it.
            for k in 0..=(cap + 5) {
                assert_eq!(
                    t.pmf(k).to_bits(),
                    g.pmf(k).to_bits(),
                    "pmf cap {cap} k {k}"
                );
                assert_eq!(
                    t.cdf(k).to_bits(),
                    g.cdf(k).to_bits(),
                    "cdf cap {cap} k {k}"
                );
                assert_eq!(
                    t.tail(k).to_bits(),
                    g.tail(k).to_bits(),
                    "tail cap {cap} k {k}"
                );
            }
            assert_eq!(t.pmf(u32::MAX), 0.0);
            assert_eq!(t.cdf(u32::MAX), 1.0);
            assert_eq!(t.tail(u32::MAX), 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn table_zero_cap_rejected() {
        let _ = TruncatedGeometricTable::new(0);
    }
}
