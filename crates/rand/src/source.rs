//! Metered bit sources.
//!
//! A [`BitSource`] hands out random bits one at a time and counts every bit it
//! emits. Sources may be *finite* ([`BitTape`]) — drawing past the end yields
//! [`Exhausted`] — which is how the paper's "a node holds just a single bit"
//! regime is enforced mechanically rather than by convention.

use crate::prng::{Prng, Xoshiro256StarStar};
use std::error::Error;
use std::fmt;

/// Error returned when a finite randomness source has run dry.
///
/// Algorithms that are *supposed* to work with a fixed bit budget surface this
/// error instead of silently recycling bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted {
    /// Total bits the source held before running dry.
    pub capacity: u64,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "randomness source exhausted after {} bits",
            self.capacity
        )
    }
}

impl Error for Exhausted {}

/// A metered stream of random bits.
///
/// All draws go through [`BitSource::try_next_bit`]; the provided combinators
/// (`next_bits`, `geometric`, `bernoulli`, …) therefore meter correctly for
/// every implementation.
///
/// # Example
/// ```
/// use locality_rand::source::{BitSource, PrngSource};
/// let mut s = PrngSource::seeded(5);
/// let word = s.next_bits(10).unwrap();
/// assert!(word < 1024);
/// assert_eq!(s.bits_drawn(), 10);
/// ```
pub trait BitSource {
    /// Draw one bit.
    ///
    /// # Errors
    /// Returns [`Exhausted`] if the source is finite and empty.
    fn try_next_bit(&mut self) -> Result<bool, Exhausted>;

    /// Number of bits drawn from this source so far.
    fn bits_drawn(&self) -> u64;

    /// Draw one bit.
    ///
    /// # Panics
    /// Panics if the source is exhausted. Use [`BitSource::try_next_bit`] when
    /// exhaustion is an expected outcome.
    fn next_bit(&mut self) -> bool {
        self.try_next_bit().expect("bit source exhausted") // audit: allow(panic) -- infallible-by-contract wrapper; exhaustion-aware callers use the try_ variant
    }

    /// Draw `k ≤ 64` bits and pack them into the low bits of a `u64`
    /// (first-drawn bit is the most significant of the `k`).
    ///
    /// # Errors
    /// Returns [`Exhausted`] if fewer than `k` bits remain.
    ///
    /// # Panics
    /// Panics if `k > 64`.
    fn next_bits(&mut self, k: u32) -> Result<u64, Exhausted> {
        assert!(k <= 64, "next_bits: k must be at most 64");
        let mut v = 0u64;
        for _ in 0..k {
            v = (v << 1) | self.try_next_bit()? as u64;
        }
        Ok(v)
    }

    /// Sample a geometric random variable with parameter 1/2:
    /// flip fair coins until the first tail; the value is the index of that
    /// flip, so `Pr[X = k] = 2^-k` for `k ≥ 1`.
    ///
    /// This is exactly the paper's footnote-8 sampler (Lemma 3.3): the number
    /// of consumed bits equals the returned value, and the value is capped at
    /// `cap` flips (returning `cap` if every flip was heads), mirroring the
    /// "10 log n bits suffice w.h.p." truncation.
    ///
    /// # Panics
    /// Panics on exhaustion; use a sufficiently provisioned source.
    fn geometric(&mut self, cap: u32) -> u32 {
        for k in 1..=cap {
            if !self.next_bit() {
                return k;
            }
        }
        cap
    }

    /// Bernoulli trial with probability `num/den`, consuming an *expected*
    /// two bits (lazy binary-expansion comparison).
    ///
    /// # Panics
    /// Panics if `den == 0`, if `num > den`, or on exhaustion.
    fn bernoulli(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0, "bernoulli: zero denominator");
        assert!(num <= den, "bernoulli: probability above one");
        if num == 0 {
            return false;
        }
        if num == den {
            return true;
        }
        // Compare a uniform real r = 0.b1 b2 ... against p = num/den bit by
        // bit; return r < p. Each step doubles the remainder of p.
        let mut rem = num;
        for _ in 0..128 {
            rem *= 2;
            let p_bit = rem >= den;
            if p_bit {
                rem -= den;
            }
            let r_bit = self.next_bit();
            if r_bit != p_bit {
                return p_bit && !r_bit;
            }
            if rem == 0 {
                return false;
            }
        }
        false // astronomically unlikely tie after 128 bits
    }

    /// Uniform value in `0..n` by rejection over `ceil(log2 n)`-bit words.
    ///
    /// # Panics
    /// Panics if `n == 0` or on exhaustion.
    fn uniform_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "uniform_below: n must be positive");
        if n == 1 {
            return 0;
        }
        let k = 64 - (n - 1).leading_zeros();
        loop {
            let v = self.next_bits(k).expect("bit source exhausted"); // audit: allow(panic) -- infallible-by-contract wrapper; exhaustion-aware callers use the try_ variant
            if v < n {
                return v;
            }
        }
    }
}

/// An unbounded, metered source backed by a PRNG — the "standard model" of
/// randomized distributed algorithms (unlimited private bits).
#[derive(Debug, Clone)]
pub struct PrngSource {
    prng: Xoshiro256StarStar,
    buffer: u64,
    buffered: u32,
    drawn: u64,
}

impl PrngSource {
    /// Create a source from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            prng: Xoshiro256StarStar::new(seed),
            buffer: 0,
            buffered: 0,
            drawn: 0,
        }
    }
}

impl BitSource for PrngSource {
    fn try_next_bit(&mut self) -> Result<bool, Exhausted> {
        if self.buffered == 0 {
            self.buffer = self.prng.next_u64();
            self.buffered = 64;
        }
        let bit = self.buffer & 1 == 1;
        self.buffer >>= 1;
        self.buffered -= 1;
        self.drawn += 1;
        Ok(bit)
    }

    fn bits_drawn(&self) -> u64 {
        self.drawn
    }
}

/// A metered source is also a word generator: a 64-bit draw consumes 64
/// metered bits (any buffered remainder first, preserving bit order), so
/// word-oriented seeded constructions — the MPX exponential shifts — share
/// the same accounting as the bit-at-a-time phase algorithms.
impl Prng for PrngSource {
    fn next_u64(&mut self) -> u64 {
        self.drawn += 64;
        let k = self.buffered;
        if k == 0 {
            return self.prng.next_u64();
        }
        // `k` leftover bits become the low bits of the word; a fresh word
        // supplies the rest and leaves its own top `k` bits buffered.
        let low = self.buffer & ((1u64 << k) - 1);
        let fresh = self.prng.next_u64();
        self.buffer = fresh >> (64 - k);
        self.buffered = k;
        low | (fresh << k)
    }
}

/// A finite tape of pre-committed bits.
///
/// This is the mechanical form of "node v holds b bits of randomness": once
/// the tape is empty, no more randomness exists.
///
/// # Example
/// ```
/// use locality_rand::source::{BitSource, BitTape};
/// let mut t = BitTape::from_bits(vec![true, false, true]);
/// assert_eq!(t.remaining(), 3);
/// assert!(t.next_bit());
/// assert!(!t.next_bit());
/// assert!(t.next_bit());
/// assert!(t.try_next_bit().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitTape {
    bits: Vec<bool>,
    pos: usize,
}

impl BitTape {
    /// Wrap an explicit bit vector.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Self { bits, pos: 0 }
    }

    /// Draw `len` fresh bits from `src` onto a new tape.
    ///
    /// # Panics
    /// Panics if `src` is exhausted before `len` bits are drawn.
    pub fn draw_from(src: &mut impl BitSource, len: usize) -> Self {
        Self::from_bits((0..len).map(|_| src.next_bit()).collect())
    }

    /// Bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }

    /// Total capacity of the tape.
    pub fn capacity(&self) -> usize {
        self.bits.len()
    }

    /// Read (without consuming) the bit at absolute position `i`.
    pub fn peek(&self, i: usize) -> Option<bool> {
        self.bits.get(i).copied()
    }

    /// The underlying bits.
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// Append the contents of another tape (used when gathering scattered
    /// bits to a cluster center, Lemma 3.2).
    pub fn extend_from(&mut self, other: &BitTape) {
        self.bits.extend_from_slice(&other.bits);
    }
}

impl BitSource for BitTape {
    fn try_next_bit(&mut self) -> Result<bool, Exhausted> {
        match self.bits.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => Err(Exhausted {
                capacity: self.bits.len() as u64,
            }),
        }
    }

    fn bits_drawn(&self) -> u64 {
        self.pos as u64
    }
}

impl FromIterator<bool> for BitTape {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bits(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_source_meters_every_bit() {
        let mut s = PrngSource::seeded(1);
        for i in 1..=200u64 {
            let _ = s.next_bit();
            assert_eq!(s.bits_drawn(), i);
        }
    }

    #[test]
    fn next_bits_packs_msb_first() {
        let mut t = BitTape::from_bits(vec![true, false, true, true]);
        assert_eq!(t.next_bits(4).unwrap(), 0b1011);
    }

    #[test]
    fn tape_exhausts_with_capacity() {
        let mut t = BitTape::from_bits(vec![false; 5]);
        for _ in 0..5 {
            t.next_bit();
        }
        assert_eq!(t.try_next_bit(), Err(Exhausted { capacity: 5 }));
        // Error formatting is human-readable.
        let msg = Exhausted { capacity: 5 }.to_string();
        assert!(msg.contains('5'));
    }

    #[test]
    fn geometric_matches_distribution() {
        let mut s = PrngSource::seeded(2024);
        let n = 40_000;
        let mut counts = [0u32; 8];
        for _ in 0..n {
            let v = s.geometric(32) as usize;
            if v < counts.len() {
                counts[v] += 1;
            }
        }
        // Pr[X=1] = 1/2, Pr[X=2] = 1/4, ...
        for (k, &c) in counts.iter().enumerate().take(5).skip(1) {
            let expected = n as f64 / (1u64 << k) as f64;
            let got = c as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt() + 20.0,
                "geometric mass at {k}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn geometric_consumes_exactly_value_bits() {
        let mut t = BitTape::from_bits(vec![true, true, false]);
        let v = t.geometric(10);
        assert_eq!(v, 3);
        assert_eq!(t.bits_drawn(), 3);
    }

    #[test]
    fn geometric_cap_applies() {
        let mut t = BitTape::from_bits(vec![true; 100]);
        assert_eq!(t.geometric(7), 7);
        assert_eq!(t.bits_drawn(), 7);
    }

    #[test]
    fn bernoulli_edge_probabilities_consume_nothing() {
        let mut s = PrngSource::seeded(3);
        assert!(!s.bernoulli(0, 10));
        assert!(s.bernoulli(10, 10));
        assert_eq!(s.bits_drawn(), 0);
    }

    #[test]
    fn bernoulli_quarter_frequency() {
        let mut s = PrngSource::seeded(4);
        let n = 40_000;
        let hits = (0..n).filter(|_| s.bernoulli(1, 4)).count();
        let expected = n as f64 / 4.0;
        assert!(
            (hits as f64 - expected).abs() < 5.0 * (expected * 0.75).sqrt(),
            "hits {hits} vs expected {expected}"
        );
        // Lazy comparison should average ~2 bits per trial, certainly < 4.
        assert!(s.bits_drawn() < 4 * n as u64);
    }

    #[test]
    fn bernoulli_is_cheap_in_bits() {
        let mut s = PrngSource::seeded(5);
        let trials = 10_000u64;
        for _ in 0..trials {
            s.bernoulli(1, 3);
        }
        let avg = s.bits_drawn() as f64 / trials as f64;
        assert!(avg < 3.0, "expected ~2 bits per trial, got {avg}");
    }

    #[test]
    fn uniform_below_range_small_cases() {
        let mut s = PrngSource::seeded(6);
        for n in 1..=9u64 {
            for _ in 0..200 {
                assert!(BitSource::uniform_below(&mut s, n) < n);
            }
        }
    }

    #[test]
    fn tape_extend_and_peek() {
        let mut a = BitTape::from_bits(vec![true]);
        let b = BitTape::from_bits(vec![false, true]);
        a.extend_from(&b);
        assert_eq!(a.capacity(), 3);
        assert_eq!(a.peek(2), Some(true));
        assert_eq!(a.peek(3), None);
    }

    #[test]
    fn tape_draw_from_meters_parent() {
        let mut s = PrngSource::seeded(9);
        let t = BitTape::draw_from(&mut s, 17);
        assert_eq!(t.capacity(), 17);
        assert_eq!(s.bits_drawn(), 17);
    }

    #[test]
    fn tape_from_iterator() {
        let t: BitTape = [true, false].into_iter().collect();
        assert_eq!(t.capacity(), 2);
    }

    #[test]
    fn prng_words_are_the_bit_stream_lsb_first() {
        // Drawing a word via `Prng` must consume exactly the next 64 bits
        // of the metered stream, LSB-first — including when a partial
        // buffer is left over from a preceding bit draw.
        let mut bits = PrngSource::seeded(11);
        let mut words = PrngSource::seeded(11);
        assert_eq!(bits.next_bit(), words.next_bit());
        let w = Prng::next_u64(&mut words);
        let mut expect = 0u64;
        for i in 0..64 {
            if bits.next_bit() {
                expect |= 1 << i;
            }
        }
        assert_eq!(w, expect);
        assert_eq!(words.bits_drawn(), 65);
        // The leftover buffer keeps the streams aligned afterwards.
        assert_eq!(bits.next_bit(), words.next_bit());
    }
}
