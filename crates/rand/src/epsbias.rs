//! Small-bias (ε-biased) bit spaces — Naor & Naor [NN93] / AGHP.
//!
//! Lemma 3.4 of the paper invokes Naor–Naor spaces to solve the splitting
//! problem with only `O(log n)` bits of shared randomness. We implement the
//! *powering* construction of Alon–Goldreich–Håstad–Peralta: the seed is a
//! pair `(x, y)` of elements of GF(2^64) (128 truly random bits) and
//!
//! ```text
//!     r_i = ⟨ x^i , y ⟩   (inner product of bit vectors, i = 1, 2, …)
//! ```
//!
//! For every nonempty index set `S ⊆ {1..n}`, the parity `⊕_{i∈S} r_i` equals
//! `⟨ p(x), y ⟩` with `p` the nonzero polynomial `Σ_{i∈S} z^i`; it is biased
//! only when `p(x) = 0`, which happens for at most `n` of the `2^64` choices
//! of `x`. Hence the space is ε-biased with `ε ≤ n / 2^64`.

use crate::source::{BitSource, Exhausted};

/// Reduction polynomial for GF(2^64): `x^64 + x^4 + x^3 + x + 1`.
const GF64_POLY: u64 = 0b11011;

/// Carry-less multiplication in GF(2^64) (software, constant 64-step loop).
#[inline]
fn gf64_mul(a: u64, b: u64) -> u64 {
    // Polynomial multiplication into 128 bits.
    let mut hi = 0u64;
    let mut lo = 0u64;
    for i in 0..64 {
        if (b >> i) & 1 == 1 {
            lo ^= a << i;
            if i > 0 {
                hi ^= a >> (64 - i);
            }
        }
    }
    // Reduce the high half: x^64 ≡ x^4 + x^3 + x + 1.
    // Two folding passes suffice because GF64_POLY has degree 4 < 32.
    let mut acc = lo;
    let mut carry = hi;
    for _ in 0..2 {
        if carry == 0 {
            break;
        }
        let mut new_carry = 0u64;
        let mut folded = 0u64;
        for i in 0..64 {
            if (carry >> i) & 1 == 1 {
                folded ^= GF64_POLY << i;
                if i >= 60 {
                    new_carry ^= GF64_POLY >> (64 - i);
                }
            }
        }
        acc ^= folded;
        carry = new_carry;
    }
    acc
}

/// An ε-biased space over `2^64` addressable bits with `ε ≤ n / 2^64` for the
/// first `n` indices, from a 128-bit seed.
///
/// # Example
/// ```
/// use locality_rand::prelude::*;
/// let mut src = PrngSource::seeded(3);
/// let eb = EpsBiasedBits::from_source(&mut src).unwrap();
/// assert_eq!(src.bits_drawn(), 128);
/// let (a, b) = (eb.bit(1), eb.bit(2));
/// let _ = a ^ b;
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpsBiasedBits {
    x: u64,
    y: u64,
}

impl EpsBiasedBits {
    /// Build from an explicit 128-bit seed `(x, y)`.
    ///
    /// A zero `x` yields the all-`bit(0)` degenerate point of the sample
    /// space; it is a legal (measure `2^-64`) seed and is accepted.
    pub fn from_seed(x: u64, y: u64) -> Self {
        Self { x, y }
    }

    /// Draw the 128-bit seed from a bit source.
    ///
    /// # Errors
    /// Returns [`Exhausted`] if fewer than 128 bits remain.
    pub fn from_source(src: &mut impl BitSource) -> Result<Self, Exhausted> {
        let x = src.next_bits(64)?;
        let y = src.next_bits(64)?;
        Ok(Self { x, y })
    }

    /// Seed length in truly random bits (always 128).
    pub fn seed_bits(&self) -> u64 {
        128
    }

    /// The i-th bit of the space: `⟨x^i, y⟩`.
    ///
    /// Random access costs `O(log i)` field multiplications.
    pub fn bit(&self, index: u64) -> bool {
        let xi = gf64_pow(self.x, index);
        (xi & self.y).count_ones() & 1 == 1
    }

    /// Iterator over bits `1, 2, 3, …` with O(1) field mults per step.
    pub fn iter(&self) -> Bits {
        Bits {
            space: *self,
            power: self.x,
        }
    }
}

/// Exponentiation in GF(2^64) by square-and-multiply. `x^0 = 1`.
fn gf64_pow(x: u64, mut e: u64) -> u64 {
    let mut base = x;
    let mut acc = 1u64;
    while e > 0 {
        if e & 1 == 1 {
            acc = gf64_mul(acc, base);
        }
        base = gf64_mul(base, base);
        e >>= 1;
    }
    acc
}

/// Sequential iterator over an ε-biased space (see [`EpsBiasedBits::iter`]).
#[derive(Debug, Clone)]
pub struct Bits {
    space: EpsBiasedBits,
    power: u64,
}

impl Iterator for Bits {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let bit = (self.power & self.space.y).count_ones() & 1 == 1;
        self.power = gf64_mul(self.power, self.space.x);
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn gf64_mul_identity_and_zero() {
        for a in [0u64, 1, 2, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(gf64_mul(a, 1), a);
            assert_eq!(gf64_mul(1, a), a);
            assert_eq!(gf64_mul(a, 0), 0);
        }
    }

    #[test]
    fn gf64_mul_commutative_and_distributive() {
        let mut g = Xoshiro256StarStar::new(1);
        for _ in 0..200 {
            let (a, b, c) = (g.next_u64(), g.next_u64(), g.next_u64());
            assert_eq!(gf64_mul(a, b), gf64_mul(b, a));
            assert_eq!(gf64_mul(a, b ^ c), gf64_mul(a, b) ^ gf64_mul(a, c));
        }
    }

    #[test]
    fn gf64_mul_associative() {
        let mut g = Xoshiro256StarStar::new(2);
        for _ in 0..100 {
            let (a, b, c) = (g.next_u64(), g.next_u64(), g.next_u64());
            assert_eq!(gf64_mul(gf64_mul(a, b), c), gf64_mul(a, gf64_mul(b, c)));
        }
    }

    #[test]
    fn gf64_pow_matches_iterated_mul() {
        let x = 0x1234_5678_9ABC_DEF0u64;
        let mut acc = 1u64;
        for e in 0..20u64 {
            assert_eq!(gf64_pow(x, e), acc);
            acc = gf64_mul(acc, x);
        }
    }

    #[test]
    fn iterator_matches_random_access() {
        let mut src = PrngSource::seeded(77);
        let eb = EpsBiasedBits::from_source(&mut src).unwrap();
        let seq: Vec<bool> = eb.iter().take(50).collect();
        for (j, &b) in seq.iter().enumerate() {
            assert_eq!(b, eb.bit(j as u64 + 1), "index {}", j + 1);
        }
    }

    #[test]
    fn bits_are_roughly_fair_over_seeds() {
        // Average single-bit bias over many seeds must be tiny.
        let mut ones = 0u64;
        let mut total = 0u64;
        for seed in 0..300u64 {
            let mut src = PrngSource::seeded(seed);
            let eb = EpsBiasedBits::from_source(&mut src).unwrap();
            for i in 1..=100u64 {
                ones += eb.bit(i) as u64;
                total += 1;
            }
        }
        let rate = ones as f64 / total as f64;
        assert!((rate - 0.5).abs() < 0.01, "bit rate {rate}");
    }

    #[test]
    fn parity_bias_is_small_for_fixed_subsets() {
        // The defining property: for a fixed subset S, the parity over random
        // seeds is near-fair. Sample 2000 seeds for a few subsets.
        let subsets: Vec<Vec<u64>> = vec![vec![1], vec![1, 2], vec![3, 17, 40], (1..=20).collect()];
        for s in &subsets {
            let mut odd = 0u64;
            let trials = 2000u64;
            for seed in 0..trials {
                let mut src = PrngSource::seeded(seed * 31 + 7);
                let eb = EpsBiasedBits::from_source(&mut src).unwrap();
                let parity = s.iter().fold(false, |p, &i| p ^ eb.bit(i));
                odd += parity as u64;
            }
            let rate = odd as f64 / trials as f64;
            assert!(
                (rate - 0.5).abs() < 0.05,
                "subset {s:?}: parity rate {rate}"
            );
        }
    }

    #[test]
    fn seed_accounting_is_128_bits() {
        let mut src = PrngSource::seeded(5);
        let eb = EpsBiasedBits::from_source(&mut src).unwrap();
        assert_eq!(eb.seed_bits(), 128);
        assert_eq!(src.bits_drawn(), 128);
    }

    #[test]
    fn short_seed_is_rejected() {
        let mut tape = BitTape::from_bits(vec![true; 100]);
        assert!(EpsBiasedBits::from_source(&mut tape).is_err());
    }
}
