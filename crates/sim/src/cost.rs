//! Cost accounting for simulated executions.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Accumulated costs of a (partial) execution: rounds, messages, bits and
/// randomness. Sequential composition of algorithms is `+` (rounds add,
/// message maxima combine by `max`).
///
/// # Example
/// ```
/// use locality_sim::cost::CostMeter;
/// let mut a = CostMeter::default();
/// a.rounds = 10;
/// a.max_message_bits = 32;
/// let mut b = CostMeter::default();
/// b.rounds = 5;
/// b.max_message_bits = 64;
/// let c = a + b;
/// assert_eq!(c.rounds, 15);
/// assert_eq!(c.max_message_bits, 64);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostMeter {
    /// Synchronous rounds elapsed.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total bits delivered.
    pub bits_sent: u64,
    /// Largest single message, in bits.
    pub max_message_bits: u64,
    /// Messages exceeding the CONGEST budget (0 in valid CONGEST runs).
    pub congest_violations: u64,
    /// Random bits drawn across all nodes.
    pub random_bits: u64,
    /// Messages an injected fault plan discarded before delivery (explicit
    /// drops plus messages superseded by a reordered late arrival). Always 0
    /// on the fault-free path.
    pub dropped: u64,
    /// Extra message copies an injected fault plan delivered beyond the
    /// sender's single send. Always 0 on the fault-free path.
    pub duplicated: u64,
    /// Messages an injected fault plan postponed by at least one round
    /// before delivering. Always 0 on the fault-free path.
    pub delayed: u64,
}

impl CostMeter {
    /// A meter with only a round count (for orchestrated subroutines whose
    /// round cost is known analytically).
    pub fn rounds_only(rounds: u64) -> Self {
        Self {
            rounds,
            ..Self::default()
        }
    }

    /// Record a delivered message of the given size.
    pub fn record_message(&mut self, bits: u64, congest_budget: Option<u64>) {
        self.messages += 1;
        self.bits_sent += bits;
        self.max_message_bits = self.max_message_bits.max(bits);
        if let Some(budget) = congest_budget {
            if bits > budget {
                self.congest_violations += 1;
            }
        }
    }

    /// Record a broadcast as `fanout` directed messages of `bits` each.
    ///
    /// CONGEST is a per-edge budget: a broadcast from a degree-`d` node puts
    /// one message on each of its `d` ports, so an over-budget broadcast is
    /// `d` violations — counting it once would under-report congestion by a
    /// factor of the degree. The engine's arena layout already enforces this
    /// (each occupied edge slot is one directed message); this method is the
    /// same rule for orchestrated code that meters broadcasts in bulk.
    ///
    /// # Example
    /// ```
    /// use locality_sim::cost::CostMeter;
    /// let mut m = CostMeter::default();
    /// m.record_broadcast(20, 5, Some(16)); // over budget on every port
    /// assert_eq!(m.messages, 5);
    /// assert_eq!(m.congest_violations, 5);
    /// ```
    pub fn record_broadcast(&mut self, bits: u64, fanout: u64, congest_budget: Option<u64>) {
        if fanout == 0 {
            return;
        }
        self.messages += fanout;
        self.bits_sent += bits * fanout;
        self.max_message_bits = self.max_message_bits.max(bits);
        if let Some(budget) = congest_budget {
            if bits > budget {
                self.congest_violations += fanout;
            }
        }
    }

    /// Whether this execution was CONGEST-clean.
    pub fn congest_clean(&self) -> bool {
        self.congest_violations == 0
    }
}

impl Add for CostMeter {
    type Output = CostMeter;

    fn add(mut self, rhs: CostMeter) -> CostMeter {
        self += rhs;
        self
    }
}

impl AddAssign for CostMeter {
    fn add_assign(&mut self, rhs: CostMeter) {
        self.rounds += rhs.rounds;
        self.messages += rhs.messages;
        self.bits_sent += rhs.bits_sent;
        self.max_message_bits = self.max_message_bits.max(rhs.max_message_bits);
        self.congest_violations += rhs.congest_violations;
        self.random_bits += rhs.random_bits;
        self.dropped += rhs.dropped;
        self.duplicated += rhs.duplicated;
        self.delayed += rhs.delayed;
    }
}

impl fmt::Display for CostMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} msgs={} bits={} maxmsg={}b violations={} randbits={}",
            self.rounds,
            self.messages,
            self.bits_sent,
            self.max_message_bits,
            self.congest_violations,
            self.random_bits
        )?;
        // Fault counters appear only when a fault plan actually fired, so
        // fault-free tables and logs keep their historical shape.
        if self.dropped != 0 || self.duplicated != 0 || self.delayed != 0 {
            write!(
                f,
                " dropped={} duplicated={} delayed={}",
                self.dropped, self.duplicated, self.delayed
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_message_tracks_max_and_violations() {
        let mut m = CostMeter::default();
        m.record_message(10, Some(16));
        m.record_message(20, Some(16));
        m.record_message(5, None);
        assert_eq!(m.messages, 3);
        assert_eq!(m.bits_sent, 35);
        assert_eq!(m.max_message_bits, 20);
        assert_eq!(m.congest_violations, 1);
        assert!(!m.congest_clean());
    }

    #[test]
    fn record_broadcast_counts_per_port() {
        let mut m = CostMeter::default();
        m.record_broadcast(10, 4, Some(16)); // within budget: no violations
        assert_eq!(m.messages, 4);
        assert_eq!(m.bits_sent, 40);
        assert_eq!(m.congest_violations, 0);
        m.record_broadcast(20, 3, Some(16)); // over budget: one per port
        assert_eq!(m.messages, 7);
        assert_eq!(m.congest_violations, 3);
        assert_eq!(m.max_message_bits, 20);
        m.record_broadcast(99, 0, Some(16)); // isolated node: nothing sent
        assert_eq!(m.messages, 7);
        assert_eq!(m.max_message_bits, 20);
        // Per-port bulk accounting agrees with port-by-port accounting.
        let mut p = CostMeter::default();
        for _ in 0..4 {
            p.record_message(10, Some(16));
        }
        for _ in 0..3 {
            p.record_message(20, Some(16));
        }
        assert_eq!(m, p);
    }

    #[test]
    fn composition_adds_rounds_maxes_messages() {
        let mut a = CostMeter::rounds_only(3);
        a.max_message_bits = 100;
        a.random_bits = 7;
        let mut b = CostMeter::rounds_only(4);
        b.max_message_bits = 50;
        b.random_bits = 1;
        let c = a + b;
        assert_eq!(c.rounds, 7);
        assert_eq!(c.max_message_bits, 100);
        assert_eq!(c.random_bits, 8);
    }

    #[test]
    fn display_is_nonempty() {
        let s = CostMeter::default().to_string();
        assert!(s.contains("rounds=0"));
    }

    #[test]
    fn fault_counters_compose_and_display_only_when_nonzero() {
        assert!(!CostMeter::default().to_string().contains("dropped="));
        let a = CostMeter {
            dropped: 2,
            duplicated: 1,
            ..CostMeter::default()
        };
        let b = CostMeter {
            dropped: 3,
            delayed: 5,
            ..CostMeter::default()
        };
        let c = a + b;
        assert_eq!((c.dropped, c.duplicated, c.delayed), (5, 1, 5));
        let s = c.to_string();
        assert!(s.contains("dropped=5 duplicated=1 delayed=5"), "{s}");
    }
}
