//! Reusable CONGEST protocols on the engine: the primitives the paper's
//! constructions compose (BFS layering, leader election by id flooding,
//! convergecast aggregation).
//!
//! Each protocol is a real per-node state machine; tests cross-validate
//! against the centralized reference implementations in `locality-graph`.

use crate::engine::{Engine, EngineError, Run};
use crate::node::{NodeContext, Outbox, Protocol, Step};
use crate::wire::Compact;
use locality_graph::ids::IdAssignment;
use locality_graph::Graph;

/// Per-node BFS output: `(distance, parent port)`, each `None` when the node
/// is unreachable within the deadline.
pub type BfsOutput = (Option<u32>, Option<usize>);

/// BFS from a set of sources: each node halts with `(distance, parent port)`
/// to its nearest source (`None` if unreachable within the deadline).
#[derive(Debug)]
pub struct BfsProtocol {
    is_source: bool,
    deadline: u32,
    dist: Option<u32>,
    parent_port: Option<usize>,
}

impl BfsProtocol {
    /// One instance per node; `deadline` must exceed the graph diameter.
    pub fn new(is_source: bool, deadline: u32) -> Self {
        Self {
            is_source,
            deadline,
            dist: None,
            parent_port: None,
        }
    }

    /// Run BFS on `g` from `sources`; returns per-node
    /// `(distance, parent port)`.
    ///
    /// # Errors
    /// Propagates [`EngineError`] (deadline too small, etc.).
    pub fn run(
        g: &Graph,
        ids: &IdAssignment,
        sources: &[usize],
        deadline: u32,
    ) -> Result<Run<BfsOutput>, EngineError> {
        let mut engine = Engine::congest(g, ids);
        let nodes = (0..g.node_count()).map(|v| BfsProtocol::new(sources.contains(&v), deadline));
        engine.run(nodes, deadline + 1)
    }
}

impl Protocol for BfsProtocol {
    type Message = u32;
    type Output = BfsOutput;

    fn start(&mut self, _ctx: &NodeContext) -> Outbox<u32> {
        if self.is_source {
            self.dist = Some(0);
            Outbox::broadcast(0)
        } else {
            Outbox::silent()
        }
    }

    fn round(
        &mut self,
        _ctx: &NodeContext,
        round: u32,
        inbox: &[(usize, u32)],
    ) -> Step<u32, Self::Output> {
        if round >= self.deadline {
            return Step::Halt((self.dist, self.parent_port));
        }
        if self.dist.is_none() {
            if let Some(&(port, d)) = inbox.iter().min_by_key(|&&(p, d)| (d, p)) {
                self.dist = Some(d + 1);
                self.parent_port = Some(port);
                return Step::Continue(Outbox::broadcast(d + 1));
            }
        }
        Step::Continue(Outbox::silent())
    }
}

/// Leader election by minimum-id flooding: every node halts with the
/// smallest id in its connected component. Messages are width-aware
/// [`Compact`] ids, so the protocol is CONGEST-clean for any id space of
/// `O(log n)` bits.
#[derive(Debug)]
pub struct LeaderElection {
    best: u64,
    id_width: u16,
    deadline: u32,
    changed: bool,
}

impl LeaderElection {
    /// Run on `g`; `deadline` must exceed the diameter.
    ///
    /// # Errors
    /// Propagates [`EngineError`].
    pub fn run(g: &Graph, ids: &IdAssignment, deadline: u32) -> Result<Run<u64>, EngineError> {
        let id_width = ids.bit_len().max(1) as u16;
        let mut engine = Engine::congest(g, ids);
        let nodes = (0..g.node_count()).map(|_| LeaderElection {
            best: u64::MAX,
            id_width,
            deadline,
            changed: false,
        });
        engine.run(nodes, deadline + 1)
    }

    fn message(&self) -> Compact {
        Compact::new(self.best, self.id_width)
    }
}

impl Protocol for LeaderElection {
    type Message = Compact;
    type Output = u64;

    fn start(&mut self, ctx: &NodeContext) -> Outbox<Compact> {
        self.best = ctx.id;
        Outbox::broadcast(self.message())
    }

    fn round(
        &mut self,
        _ctx: &NodeContext,
        round: u32,
        inbox: &[(usize, Compact)],
    ) -> Step<Compact, u64> {
        self.changed = false;
        for &(_, id) in inbox {
            if id.value() < self.best {
                self.best = id.value();
                self.changed = true;
            }
        }
        if round >= self.deadline {
            return Step::Halt(self.best);
        }
        if self.changed {
            Step::Continue(Outbox::broadcast(self.message()))
        } else {
            Step::Continue(Outbox::silent())
        }
    }
}

/// Convergecast on a BFS tree: leaves push values up parent ports; the root
/// halts with the sum over its component; everyone else halts with the
/// partial sum of its subtree. Requires the `(dist, parent)` output of
/// [`BfsProtocol`].
#[derive(Debug)]
pub struct ConvergecastSum {
    value: u64,
    parent_port: Option<usize>,
    expected_children: usize,
    received: usize,
    acc: u64,
    deadline: u32,
    sent: bool,
}

impl ConvergecastSum {
    /// Run a sum-convergecast on the BFS tree implied by `parents`
    /// (per-node parent *port*, `None` for roots/unreachable).
    ///
    /// # Errors
    /// Propagates [`EngineError`].
    pub fn run(
        g: &Graph,
        ids: &IdAssignment,
        parents: &[Option<usize>],
        values: &[u64],
        deadline: u32,
    ) -> Result<Run<u64>, EngineError> {
        // Children counts: node v expects one message per neighbor whose
        // parent port points at v.
        let mut expected = vec![0usize; g.node_count()];
        for v in g.nodes() {
            if let Some(p) = parents[v] {
                let parent = g.neighbors(v)[p];
                expected[parent] += 1;
            }
        }
        let mut engine = Engine::congest(g, ids);
        let nodes = (0..g.node_count()).map(|v| ConvergecastSum {
            value: values[v],
            parent_port: parents[v],
            expected_children: expected[v],
            received: 0,
            acc: values[v],
            deadline,
            sent: false,
        });
        engine.run(nodes, deadline + 1)
    }
}

impl Protocol for ConvergecastSum {
    type Message = u64;
    type Output = u64;

    fn start(&mut self, _ctx: &NodeContext) -> Outbox<u64> {
        if self.expected_children == 0 {
            if let Some(p) = self.parent_port {
                self.sent = true;
                return Outbox::directed(vec![(p, self.value)]);
            }
        }
        Outbox::silent()
    }

    fn round(&mut self, _ctx: &NodeContext, round: u32, inbox: &[(usize, u64)]) -> Step<u64, u64> {
        for &(_, v) in inbox {
            self.acc += v;
            self.received += 1;
        }
        if self.received >= self.expected_children && !self.sent {
            self.sent = true;
            if let Some(p) = self.parent_port {
                return Step::Continue(Outbox::directed(vec![(p, self.acc)]));
            }
        }
        if round >= self.deadline {
            return Step::Halt(self.acc);
        }
        Step::Continue(Outbox::silent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_graph::prelude::*;

    #[test]
    fn bfs_protocol_matches_reference() {
        let g = Graph::grid(5, 6);
        let ids = IdAssignment::sequential(g.node_count());
        let run = BfsProtocol::run(&g, &ids, &[0, 29], 40).unwrap();
        let (reference, _) = multi_source_bfs(&g, &[0, 29]);
        for v in g.nodes() {
            assert_eq!(run.outputs[v].0, reference[v], "node {v}");
        }
        // Parent ports are consistent: parent distance is one less.
        for v in g.nodes() {
            if let (Some(d), Some(p)) = run.outputs[v] {
                let parent = g.neighbors(v)[p];
                assert_eq!(run.outputs[parent].0, Some(d - 1));
            }
        }
        assert!(run.meter.congest_clean());
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let g = Graph::disjoint_union(&[Graph::path(3), Graph::path(3)]);
        let ids = IdAssignment::sequential(6);
        let run = BfsProtocol::run(&g, &ids, &[0], 10).unwrap();
        assert_eq!(run.outputs[5], (None, None));
    }

    #[test]
    fn leader_election_elects_min_id_per_component() {
        let g = Graph::disjoint_union(&[Graph::cycle(5), Graph::cycle(4)]);
        let ids = IdAssignment::from_ids(vec![9, 3, 7, 5, 8, 2, 6, 4, 1]).unwrap();
        let run = LeaderElection::run(&g, &ids, 12).unwrap();
        for v in 0..5 {
            assert_eq!(run.outputs[v], 3, "component 1 node {v}");
        }
        for v in 5..9 {
            assert_eq!(run.outputs[v], 1, "component 2 node {v}");
        }
    }

    #[test]
    fn convergecast_sums_subtrees() {
        let g = Graph::balanced_tree(2, 3); // 7 nodes, root 0
        let ids = IdAssignment::sequential(7);
        let bfs = BfsProtocol::run(&g, &ids, &[0], 10).unwrap();
        let parents: Vec<Option<usize>> = bfs.outputs.iter().map(|&(_, p)| p).collect();
        let values: Vec<u64> = (1..=7).collect(); // node v holds v+1
        let run = ConvergecastSum::run(&g, &ids, &parents, &values, 10).unwrap();
        // The root holds the total.
        assert_eq!(run.outputs[0], values.iter().sum::<u64>());
        // Leaves hold their own values.
        for (leaf, &val) in values.iter().enumerate().skip(3) {
            assert_eq!(run.outputs[leaf], val);
        }
    }

    #[test]
    fn convergecast_on_path_accumulates() {
        let g = Graph::path(5);
        let ids = IdAssignment::sequential(5);
        let bfs = BfsProtocol::run(&g, &ids, &[0], 10).unwrap();
        let parents: Vec<Option<usize>> = bfs.outputs.iter().map(|&(_, p)| p).collect();
        let run = ConvergecastSum::run(&g, &ids, &parents, &[1; 5], 12).unwrap();
        assert_eq!(run.outputs[0], 5);
        assert_eq!(run.outputs[4], 1);
    }
}
