//! Message size accounting.
//!
//! CONGEST limits messages to `O(log n)` bits, so the engine needs every
//! message type to report its wire size. [`WireSize`] is a structural
//! estimate (sum of the fields' widths) — honest enough to distinguish a
//! `(id, distance)` pair from a gathered ball of the topology.

/// Size of a value on the wire, in bits.
///
/// # Example
/// ```
/// use locality_sim::wire::WireSize;
/// assert_eq!(42u32.wire_bits(), 32);
/// assert_eq!(Some(1u8).wire_bits(), 9); // 1 tag bit + payload
/// assert_eq!(vec![1u16, 2, 3].wire_bits(), 64 + 48); // length word + items
/// ```
pub trait WireSize {
    /// Number of bits this value occupies in a message.
    fn wire_bits(&self) -> u64;
}

macro_rules! impl_wire_for_prim {
    ($($t:ty => $bits:expr),* $(,)?) => {
        $(impl WireSize for $t {
            fn wire_bits(&self) -> u64 { $bits }
        })*
    };
}

impl_wire_for_prim! {
    bool => 1,
    u8 => 8, i8 => 8,
    u16 => 16, i16 => 16,
    u32 => 32, i32 => 32,
    u64 => 64, i64 => 64,
    usize => 64, isize => 64,
    f64 => 64, f32 => 32,
    () => 0,
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_bits(&self) -> u64 {
        1 + self.as_ref().map_or(0, WireSize::wire_bits)
    }
}

impl<T: WireSize, E: WireSize> WireSize for Result<T, E> {
    fn wire_bits(&self) -> u64 {
        1 + match self {
            Ok(v) => v.wire_bits(),
            Err(e) => e.wire_bits(),
        }
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_bits(&self) -> u64 {
        64 + self.iter().map(WireSize::wire_bits).sum::<u64>()
    }
}

impl<T: WireSize> WireSize for Box<T> {
    fn wire_bits(&self) -> u64 {
        self.as_ref().wire_bits()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_bits(&self) -> u64 {
        self.0.wire_bits() + self.1.wire_bits()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    fn wire_bits(&self) -> u64 {
        self.0.wire_bits() + self.1.wire_bits() + self.2.wire_bits()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize, D: WireSize> WireSize for (A, B, C, D) {
    fn wire_bits(&self) -> u64 {
        self.0.wire_bits() + self.1.wire_bits() + self.2.wire_bits() + self.3.wire_bits()
    }
}

/// A compact integer that charges only `width` bits on the wire — used by
/// CONGEST protocols whose payloads are ids or distances of `Θ(log n)` bits
/// rather than full machine words.
///
/// # Example
/// ```
/// use locality_sim::wire::{Compact, WireSize};
/// let id = Compact::new(300, 10);
/// assert_eq!(id.wire_bits(), 10);
/// assert_eq!(id.value(), 300);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Compact {
    value: u64,
    width: u16,
}

impl Compact {
    /// Wrap `value`, charging `width` bits.
    ///
    /// # Panics
    /// Panics if `value` does not fit in `width` bits.
    pub fn new(value: u64, width: u16) -> Self {
        assert!(
            width >= 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        Self { value, width }
    }

    /// The wrapped value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The declared width.
    pub fn width(&self) -> u16 {
        self.width
    }
}

impl WireSize for Compact {
    fn wire_bits(&self) -> u64 {
        self.width as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(true.wire_bits(), 1);
        assert_eq!(0u64.wire_bits(), 64);
        assert_eq!(().wire_bits(), 0);
    }

    #[test]
    fn options_and_results() {
        assert_eq!(None::<u32>.wire_bits(), 1);
        assert_eq!(Some(0u32).wire_bits(), 33);
        assert_eq!(Ok::<u8, u64>(1).wire_bits(), 9);
        assert_eq!(Err::<u8, u64>(1).wire_bits(), 65);
    }

    #[test]
    fn collections_and_tuples() {
        assert_eq!(Vec::<bool>::new().wire_bits(), 64);
        assert_eq!(vec![true, false].wire_bits(), 66);
        assert_eq!((1u8, 2u8).wire_bits(), 16);
        assert_eq!((1u8, 2u8, true).wire_bits(), 17);
        assert_eq!((1u8, 2u8, true, 0u16).wire_bits(), 33);
        assert_eq!(Box::new(5u32).wire_bits(), 32);
    }

    #[test]
    fn compact_width_checked() {
        assert_eq!(Compact::new(7, 3).wire_bits(), 3);
        assert_eq!(Compact::new(u64::MAX, 64).wire_bits(), 64);
    }

    #[test]
    #[should_panic]
    fn compact_overflow_panics() {
        let _ = Compact::new(8, 3);
    }
}
