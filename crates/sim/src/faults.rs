//! Seeded, deterministic fault injection for the arena executor.
//!
//! The paper's model is an ideal synchronous network: every message written
//! in round `r` arrives in round `r + 1`, and every node steps every round.
//! A real deployment gets neither guarantee. This module expresses the
//! standard failure repertoire — message **drop**, **duplication**,
//! **reordering**, **bounded delay**, and **crash-stop** node failures — as
//! a [`FaultPlan`]: a pure value whose every decision is a deterministic
//! function of `(seed, kind, round, slot)`. Because no decision depends on
//! execution order, a plan injected by
//! [`crate::executor::Executor::run_with_faults`] yields bit-identical
//! outcomes and meters across thread counts, and a plan whose rates are all
//! zero is byte-for-byte the fault-free executor (both pinned by proptest).
//!
//! Fault semantics, in arena terms (one slot per directed edge per round):
//!
//! - **Drop**: the written message is discarded before delivery and counted
//!   in [`crate::cost::CostMeter::dropped`].
//! - **Delay**: delivery is postponed by `1..=max_delay` rounds (counted in
//!   `delayed`); the copy arrives through the same edge slot later.
//! - **Duplication**: one extra copy is delivered `1..=max_delay` rounds
//!   after the original's send round (counted in `duplicated`).
//! - **Reordering**: when a late copy and a fresh send arrive on the same
//!   edge in the same round, a seeded coin decides which one the receiver
//!   observes; the superseded copy is counted in `dropped`. (Within a
//!   single round the arena model is order-free, so reordering is only
//!   observable through these late-vs-fresh races.)
//! - **Crash-stop**: a node with crash round `c` executes rounds `< c`
//!   normally — messages it sent in round `c - 1` are still delivered — and
//!   then never steps, sends, or halts again. Its result is
//!   [`NodeOutcome::Crashed`] instead of an output.
//!
//! Probabilities are exact rationals in basis points (`1/10_000`), sampled
//! via [`locality_rand::source::PrngSource`], so `rate == 0` never consults
//! the sampler at all.

use crate::cost::CostMeter;
use locality_rand::prng::{Prng, SplitMix64};
use locality_rand::source::{BitSource, PrngSource};

/// Basis points in a whole: rates are expressed per 10 000.
pub const RATE_ONE: u32 = 10_000;

/// Upper bound on [`FaultPlan::max_delay`], bounding the executor's
/// pending-delivery ring to a small constant number of arenas.
pub const MAX_DELAY_CAP: u32 = 64;

// Domain separators for the per-decision hash (arbitrary odd constants).
const DOM_DROP: u64 = 0x9E37_79B9_7F4A_7C15;
const DOM_DELAY: u64 = 0xBF58_476D_1CE4_E5B9;
const DOM_DELAY_LEN: u64 = 0x94D0_49BB_1331_11EB;
const DOM_DUP: u64 = 0xD6E8_FEB8_6659_FD93;
const DOM_DUP_LEN: u64 = 0xA076_1D64_78BD_642F;
const DOM_CRASH: u64 = 0xE703_7ED1_A0B4_28DB;
const DOM_REORDER: u64 = 0x8EBC_6AF0_9C88_C6E3;

/// What the plan decided for one freshly written message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver this round, as the fault-free executor would.
    Deliver,
    /// Discard before delivery.
    Drop,
    /// Deliver after this many extra rounds (`>= 1`).
    Delay(u32),
}

/// The full fate of one written message: what happens to the primary copy,
/// and whether an extra duplicate copy is scheduled (`Some(extra_rounds)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageFate {
    /// Fate of the sender's own copy.
    pub primary: Delivery,
    /// Delay of the duplicated extra copy, if one is injected.
    pub duplicate: Option<u32>,
}

/// A seeded, deterministic fault schedule.
///
/// All decisions are pure functions of the plan and the `(round, slot)` or
/// node coordinates — nothing is mutated while executing, so one plan can
/// drive any number of runs and threads and always describes the same
/// faults.
///
/// # Example
/// ```
/// use locality_sim::faults::{Delivery, FaultPlan, RATE_ONE};
///
/// let plan = FaultPlan::new(7)
///     .with_drop(RATE_ONE / 10)       // 10% of messages dropped
///     .with_delay(RATE_ONE / 20, 3)   // 5% delayed by 1..=3 rounds
///     .with_crashes(RATE_ONE / 50, 4); // ~2% of nodes crash at round 4
/// // Decisions are reproducible values, not events:
/// assert_eq!(plan.message_fate(1, 42), plan.message_fate(1, 42));
/// assert!(matches!(
///     plan.message_fate(1, 42).primary,
///     Delivery::Deliver | Delivery::Drop | Delivery::Delay(_)
/// ));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    seed: u64,
    drop_bp: u32,
    duplicate_bp: u32,
    delay_bp: u32,
    max_delay: u32,
    crash_bp: u32,
    crash_round: u32,
    /// Explicit `(node, round)` crashes, in addition to the sampled ones.
    crashes: Vec<(usize, u32)>,
}

impl FaultPlan {
    /// A pass-through plan (no faults) with the given decision seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_bp: 0,
            duplicate_bp: 0,
            delay_bp: 0,
            max_delay: 1,
            crash_bp: 0,
            crash_round: 0,
            crashes: Vec::new(),
        }
    }

    /// Drop each message independently with probability `bp / 10_000`
    /// (clamped to 1).
    pub fn with_drop(mut self, bp: u32) -> Self {
        self.drop_bp = bp.min(RATE_ONE);
        self
    }

    /// Duplicate each delivered-or-delayed message independently with
    /// probability `bp / 10_000`; the extra copy arrives `1..=max_delay`
    /// rounds late (the delay bound set by [`FaultPlan::with_delay`], or 1).
    pub fn with_duplication(mut self, bp: u32) -> Self {
        self.duplicate_bp = bp.min(RATE_ONE);
        self
    }

    /// Delay each (non-dropped) message independently with probability
    /// `bp / 10_000`, by a seeded uniform `1..=max_delay` rounds
    /// (`max_delay` clamped to `1..=`[`MAX_DELAY_CAP`]).
    pub fn with_delay(mut self, bp: u32, max_delay: u32) -> Self {
        self.delay_bp = bp.min(RATE_ONE);
        self.max_delay = max_delay.clamp(1, MAX_DELAY_CAP);
        self
    }

    /// Crash each node independently with probability `bp / 10_000`, at
    /// round `round` (crash-stop: the node executes rounds `< round` only;
    /// `round == 0` means the node never even starts).
    pub fn with_crashes(mut self, bp: u32, round: u32) -> Self {
        self.crash_bp = bp.min(RATE_ONE);
        self.crash_round = round;
        self
    }

    /// Crash `node` at exactly `round`, in addition to any sampled crashes.
    pub fn with_crash_at(mut self, node: usize, round: u32) -> Self {
        self.crashes.retain(|(v, _)| *v != node);
        self.crashes.push((node, round));
        self.crashes.sort_unstable();
        self
    }

    /// Whether this plan can never inject any fault (the executor's rate-0
    /// fast-path equivalence is over such plans).
    pub fn is_pass_through(&self) -> bool {
        self.drop_bp == 0
            && self.duplicate_bp == 0
            && self.delay_bp == 0
            && self.crash_bp == 0
            && self.crashes.is_empty()
    }

    /// The plan's delay bound (always `>= 1`).
    pub fn max_delay(&self) -> u32 {
        self.max_delay
    }

    /// Ring size covering every schedulable future delivery:
    /// `max_delay + 1` rounds.
    pub fn delay_horizon(&self) -> usize {
        self.max_delay as usize + 1
    }

    /// One 64-bit decision word for `(domain, a, b)` — the root of every
    /// sampled choice, so decisions are independent across coordinates but
    /// fixed for one plan.
    fn word(&self, domain: u64, a: u64, b: u64) -> u64 {
        SplitMix64::new(
            self.seed
                ^ domain
                ^ a.wrapping_mul(0x2545_F491_4F6C_DD1D)
                ^ b.wrapping_mul(0x27D4_EB2F_1656_67C5),
        )
        .next_u64()
    }

    /// Exact-rational coin: true with probability `bp / 10_000`.
    fn hit(&self, bp: u32, domain: u64, a: u64, b: u64) -> bool {
        if bp == 0 {
            return false;
        }
        if bp >= RATE_ONE {
            return true;
        }
        PrngSource::seeded(self.word(domain, a, b)).bernoulli(bp as u64, RATE_ONE as u64)
    }

    /// A seeded delay length in `1..=max_delay`.
    fn delay_len(&self, domain: u64, round: u32, slot: usize) -> u32 {
        if self.max_delay == 1 {
            return 1;
        }
        let w = self.word(domain, round as u64, slot as u64);
        1 + BitSource::uniform_below(&mut PrngSource::seeded(w), self.max_delay as u64) as u32
    }

    /// The fate of the message written into `slot` for delivery round
    /// `round`.
    pub fn message_fate(&self, round: u32, slot: usize) -> MessageFate {
        let (r, s) = (round as u64, slot as u64);
        let primary = if self.hit(self.drop_bp, DOM_DROP, r, s) {
            Delivery::Drop
        } else if self.hit(self.delay_bp, DOM_DELAY, r, s) {
            Delivery::Delay(self.delay_len(DOM_DELAY_LEN, round, slot))
        } else {
            Delivery::Deliver
        };
        let duplicate = if self.hit(self.duplicate_bp, DOM_DUP, r, s) {
            Some(self.delay_len(DOM_DUP_LEN, round, slot))
        } else {
            None
        };
        MessageFate { primary, duplicate }
    }

    /// The round at which `node` crash-stops, if it ever does.
    pub fn crash_round_of(&self, node: usize) -> Option<u32> {
        if let Ok(i) = self.crashes.binary_search_by_key(&node, |&(v, _)| v) {
            return Some(self.crashes[i].1);
        }
        if self.hit(self.crash_bp, DOM_CRASH, node as u64, 0) {
            return Some(self.crash_round);
        }
        None
    }

    /// Resolve a same-slot race between a late copy and the message already
    /// delivered this round: `true` means the late arrival supersedes it.
    pub fn late_wins(&self, round: u32, slot: usize) -> bool {
        self.hit(RATE_ONE / 2, DOM_REORDER, round as u64, slot as u64)
    }
}

/// One node's terminal state under a faulty execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeOutcome<O> {
    /// The node halted normally with this output.
    Halted(O),
    /// The node crash-stopped at this round and produced no output.
    Crashed {
        /// First round the node failed to execute.
        round: u32,
    },
}

impl<O> NodeOutcome<O> {
    /// The output, if the node halted.
    pub fn output(&self) -> Option<&O> {
        match self {
            NodeOutcome::Halted(o) => Some(o),
            NodeOutcome::Crashed { .. } => None,
        }
    }

    /// Whether the node crash-stopped.
    pub fn is_crashed(&self) -> bool {
        matches!(self, NodeOutcome::Crashed { .. })
    }
}

/// Result of a faulty execution: like [`crate::engine::Run`], but each node
/// ends in a [`NodeOutcome`] (crashed nodes have no output) and the meter
/// carries the fault counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRun<O> {
    /// Terminal state per node, indexed by node.
    pub outcomes: Vec<NodeOutcome<O>>,
    /// Accumulated execution costs, including `dropped` / `duplicated` /
    /// `delayed` fault counters.
    pub meter: CostMeter,
    /// The CONGEST per-message budget in force, if any.
    pub budget_bits: Option<u64>,
}

impl<O> FaultRun<O> {
    /// How many nodes crash-stopped.
    pub fn crashed_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_crashed()).count()
    }

    /// The halted nodes' `(node, output)` pairs, in node order.
    pub fn outputs(&self) -> impl Iterator<Item = (usize, &O)> + '_ {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(v, o)| o.output().map(|out| (v, out)))
    }

    /// All outputs in node order, if **no** node crashed (the shape of a
    /// fault-free [`crate::engine::Run`]); `None` as soon as one crashed.
    pub fn into_outputs(self) -> Option<Vec<O>> {
        self.outcomes
            .into_iter()
            .map(|o| match o {
                NodeOutcome::Halted(out) => Some(out),
                NodeOutcome::Crashed { .. } => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_through_plan_never_decides_a_fault() {
        let plan = FaultPlan::new(99);
        assert!(plan.is_pass_through());
        for round in 1..50 {
            for slot in 0..50 {
                assert_eq!(
                    plan.message_fate(round, slot),
                    MessageFate {
                        primary: Delivery::Deliver,
                        duplicate: None
                    }
                );
            }
        }
        for node in 0..100 {
            assert_eq!(plan.crash_round_of(node), None);
        }
    }

    #[test]
    fn decisions_are_reproducible_and_seed_dependent() {
        let a = FaultPlan::new(1).with_drop(5_000);
        let b = FaultPlan::new(2).with_drop(5_000);
        let fates_a: Vec<_> = (0..200).map(|s| a.message_fate(3, s)).collect();
        let fates_a2: Vec<_> = (0..200).map(|s| a.message_fate(3, s)).collect();
        let fates_b: Vec<_> = (0..200).map(|s| b.message_fate(3, s)).collect();
        assert_eq!(fates_a, fates_a2);
        assert_ne!(fates_a, fates_b, "different seeds, different schedules");
    }

    #[test]
    fn drop_rate_is_roughly_respected() {
        let plan = FaultPlan::new(11).with_drop(2_500); // 25%
        let trials = 40_000;
        let drops = (0..trials)
            .filter(|&s| plan.message_fate(1, s).primary == Delivery::Drop)
            .count();
        let rate = drops as f64 / trials as f64;
        assert!((0.23..0.27).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn delay_lengths_stay_in_bounds() {
        let plan = FaultPlan::new(5).with_delay(RATE_ONE, 4);
        for slot in 0..500 {
            match plan.message_fate(2, slot).primary {
                Delivery::Delay(d) => assert!((1..=4).contains(&d)),
                other => panic!("rate-1 delay must always delay, got {other:?}"),
            }
        }
        assert_eq!(plan.delay_horizon(), 5);
    }

    #[test]
    fn explicit_crashes_override_sampling() {
        let plan = FaultPlan::new(8)
            .with_crashes(0, 9)
            .with_crash_at(4, 2)
            .with_crash_at(1, 3)
            .with_crash_at(4, 7); // re-registering replaces the round
        assert_eq!(plan.crash_round_of(4), Some(7));
        assert_eq!(plan.crash_round_of(1), Some(3));
        assert_eq!(plan.crash_round_of(0), None);
    }

    #[test]
    fn crash_fraction_samples_nodes() {
        let plan = FaultPlan::new(21).with_crashes(3_000, 5);
        let crashed = (0..10_000)
            .filter(|&v| plan.crash_round_of(v).is_some())
            .count();
        let rate = crashed as f64 / 10_000.0;
        assert!((0.27..0.33).contains(&rate), "rate = {rate}");
        assert!((0..10_000)
            .filter_map(|v| plan.crash_round_of(v))
            .all(|r| r == 5));
    }

    #[test]
    fn rates_clamp_and_delay_caps() {
        let plan = FaultPlan::new(0)
            .with_drop(u32::MAX)
            .with_delay(RATE_ONE, 1_000);
        assert_eq!(plan.message_fate(1, 0).primary, Delivery::Drop);
        assert_eq!(plan.max_delay(), MAX_DELAY_CAP);
    }
}
