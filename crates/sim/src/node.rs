//! Per-node protocol interface.

/// Immutable facts a node knows at the start of a protocol — exactly the
/// model's initial knowledge, nothing more.
/// The paper's non-uniform algorithms also receive `n` (or an upper bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeContext {
    /// The node's index in the graph (engine-internal addressing).
    pub node: usize,
    /// The node's unique `Θ(log n)`-bit identifier.
    pub id: u64,
    /// The node's degree (ports are `0..degree`).
    pub degree: usize,
    /// The number of nodes `n` given as input (non-uniform algorithms).
    pub n: usize,
}

/// Messages a node emits in one round.
///
/// Ports are neighbor *indices* `0..degree` (a node does not a priori know
/// its neighbors' ids — it learns them by communication).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outbox<M> {
    pub(crate) broadcast: Option<M>,
    pub(crate) directed: Vec<(usize, M)>,
}

impl<M> Outbox<M> {
    /// Send nothing this round.
    pub fn silent() -> Self {
        Self {
            broadcast: None,
            directed: Vec::new(),
        }
    }

    /// Send `msg` to every neighbor.
    pub fn broadcast(msg: M) -> Self {
        Self {
            broadcast: Some(msg),
            directed: Vec::new(),
        }
    }

    /// Send distinct messages to selected ports.
    pub fn directed(messages: Vec<(usize, M)>) -> Self {
        Self {
            broadcast: None,
            directed: messages,
        }
    }

    /// Add a directed message (on top of any broadcast, which it overrides
    /// for that port).
    pub fn send(mut self, port: usize, msg: M) -> Self {
        self.directed.push((port, msg));
        self
    }

    /// Whether nothing is sent.
    pub fn is_silent(&self) -> bool {
        self.broadcast.is_none() && self.directed.is_empty()
    }
}

/// A node's decision after a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step<M, O> {
    /// Keep running; send these messages.
    Continue(Outbox<M>),
    /// Terminate with this output (the node stays silent afterwards).
    Halt(O),
}

/// A synchronous message-passing protocol, one instance per node.
///
/// The engine calls [`Protocol::start`] before round 1 to collect the first
/// outboxes, then repeatedly delivers inboxes via [`Protocol::round`]. Inbox
/// entries are `(port, message)` pairs where `port` is the *receiver's*
/// neighbor index for the sender. A node halts by returning [`Step::Halt`];
/// the run ends when every node has halted.
pub trait Protocol {
    /// Message type (must report its wire size for CONGEST accounting).
    type Message: Clone + crate::wire::WireSize;
    /// Per-node output.
    type Output;

    /// Produce the messages for round 1.
    fn start(&mut self, ctx: &NodeContext) -> Outbox<Self::Message>;

    /// Receive round `round`'s inbox; decide to continue or halt.
    fn round(
        &mut self,
        ctx: &NodeContext,
        round: u32,
        inbox: &[(usize, Self::Message)],
    ) -> Step<Self::Message, Self::Output>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_constructors() {
        let o: Outbox<u8> = Outbox::silent();
        assert!(o.is_silent());
        let o = Outbox::broadcast(1u8);
        assert!(!o.is_silent());
        let o = Outbox::directed(vec![(0, 2u8)]).send(1, 3);
        assert_eq!(o.directed.len(), 2);
    }
}
