//! The synchronous round engine.
//!
//! Since the arena refactor this is a thin adapter over
//! [`crate::executor::Executor`]: per-node [`Protocol`] state machines are
//! wrapped so their `Outbox`es land directly in the executor's flat message
//! arenas, and their inboxes are materialized into a per-node scratch buffer
//! that is allocated once and reused every round. Both interfaces therefore
//! share one delivery, metering and halt implementation.

use crate::cost::CostMeter;
use crate::executor::{BatchProtocol, Control, Executor, Inbox, Outlet};
use crate::node::{NodeContext, Outbox, Protocol, Step};
use locality_graph::ids::IdAssignment;
use locality_graph::Graph;
use std::error::Error;
use std::fmt;

/// Communication regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Unbounded messages.
    Local,
    /// Messages of at most `budget_bits` bits; larger messages are delivered
    /// but counted as violations (so experiments can report them).
    Congest {
        /// Per-message bit budget (`O(log n)`).
        budget_bits: u64,
    },
}

impl Mode {
    /// The standard CONGEST regime for `g`: `8·⌈log2 n⌉` bits per message
    /// (the model allows any `O(log n)`; the constant is reported, not
    /// hidden). This is the single definition the engine, the executor and
    /// the algorithm wrappers all share.
    pub fn default_congest(g: &Graph) -> Self {
        Mode::Congest {
            budget_bits: 8 * g.log2_n() as u64,
        }
    }
}

/// Error from [`Engine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The number of protocol instances differed from the node count.
    WrongNodeCount {
        /// Instances supplied.
        got: usize,
        /// Nodes in the graph.
        expected: usize,
    },
    /// Some node had not halted after the round limit.
    RoundLimit {
        /// The limit that was hit.
        limit: u32,
        /// How many nodes were still running.
        still_running: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::WrongNodeCount { got, expected } => {
                write!(f, "expected {expected} protocol instances, got {got}")
            }
            EngineError::RoundLimit {
                limit,
                still_running,
            } => write!(
                f,
                "round limit {limit} reached with {still_running} nodes still running"
            ),
        }
    }
}

impl Error for EngineError {}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct Run<O> {
    /// Per-node outputs, indexed by node.
    pub outputs: Vec<O>,
    /// Cost accounting for the whole execution.
    pub meter: CostMeter,
    /// The CONGEST per-message budget the run was metered against (`None`
    /// in LOCAL mode) — kept on the result so violation counts are
    /// interpretable without the engine at hand.
    pub budget_bits: Option<u64>,
}

impl<O> Run<O> {
    /// Whether the execution stayed within its CONGEST budget (vacuously
    /// true in LOCAL mode). Violations themselves are counted per directed
    /// message in [`CostMeter::congest_violations`]: an over-budget
    /// broadcast from a degree-`d` node is `d` violations, not one.
    pub fn congest_clean(&self) -> bool {
        self.meter.congest_clean()
    }
}

/// The synchronous message-passing engine for one graph.
///
/// See the crate-level example. The engine is deterministic: nodes are
/// processed in index order and inboxes are sorted by port, so a run is a
/// pure function of the graph, ids, mode, and the protocols' own state.
#[derive(Debug)]
pub struct Engine<'g> {
    graph: &'g Graph,
    ids: &'g IdAssignment,
    mode: Mode,
}

impl<'g> Engine<'g> {
    /// A LOCAL-model engine (unbounded messages).
    ///
    /// # Panics
    /// Panics if `ids` does not match `graph`.
    pub fn local(graph: &'g Graph, ids: &'g IdAssignment) -> Self {
        assert!(ids.matches(graph), "id assignment must match graph");
        Self {
            graph,
            ids,
            mode: Mode::Local,
        }
    }

    /// A CONGEST-model engine with the standard budget
    /// ([`Mode::default_congest`]).
    ///
    /// # Panics
    /// Panics if `ids` does not match `graph`.
    pub fn congest(graph: &'g Graph, ids: &'g IdAssignment) -> Self {
        assert!(ids.matches(graph), "id assignment must match graph");
        Self {
            graph,
            ids,
            mode: Mode::default_congest(graph),
        }
    }

    /// A CONGEST-model engine with an explicit per-message budget.
    ///
    /// # Panics
    /// Panics if `ids` does not match `graph`.
    pub fn congest_with_budget(graph: &'g Graph, ids: &'g IdAssignment, budget_bits: u64) -> Self {
        assert!(ids.matches(graph), "id assignment must match graph");
        Self {
            graph,
            ids,
            mode: Mode::Congest { budget_bits },
        }
    }

    /// The communication mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Execute `protocols` (one per node, in node order) until every node has
    /// halted or `max_rounds` elapses.
    ///
    /// # Errors
    /// [`EngineError::WrongNodeCount`] or [`EngineError::RoundLimit`].
    pub fn run<P: Protocol>(
        &mut self,
        protocols: impl IntoIterator<Item = P>,
        max_rounds: u32,
    ) -> Result<Run<P::Output>, EngineError> {
        self.run_metered(protocols, max_rounds, |_| 0)
    }

    /// Like [`Engine::run`], but additionally sums per-node random-bit usage
    /// reported by `random_bits(&protocol)` after completion (protocols carry
    /// their own metered bit sources).
    ///
    /// # Errors
    /// [`EngineError::WrongNodeCount`] or [`EngineError::RoundLimit`].
    pub fn run_metered<P: Protocol>(
        &mut self,
        protocols: impl IntoIterator<Item = P>,
        max_rounds: u32,
        random_bits: impl Fn(&P) -> u64,
    ) -> Result<Run<P::Output>, EngineError> {
        self.executor().run_metered(
            protocols.into_iter().map(Legacy::new),
            max_rounds,
            |legacy: &Legacy<P>| random_bits(&legacy.inner),
        )
    }

    /// Like [`Engine::run`], but with node steps chunked across `threads`
    /// scoped threads (`0` = available parallelism). Deterministic: produces
    /// exactly the outputs and meter of [`Engine::run`] (see
    /// [`Executor::run_parallel`], including why the bounds are required
    /// unconditionally).
    ///
    /// # Errors
    /// [`EngineError::WrongNodeCount`] or [`EngineError::RoundLimit`].
    pub fn run_parallel<P>(
        &mut self,
        protocols: impl IntoIterator<Item = P>,
        max_rounds: u32,
        threads: usize,
    ) -> Result<Run<P::Output>, EngineError>
    where
        P: Protocol + Send + Clone,
        P::Message: Send + Sync,
        P::Output: Send + PartialEq + fmt::Debug,
    {
        self.executor()
            .run_parallel(protocols.into_iter().map(Legacy::new), max_rounds, threads)
    }

    fn executor(&self) -> Executor<'g> {
        match self.mode {
            Mode::Local => Executor::local(self.graph, self.ids),
            Mode::Congest { budget_bits } => {
                Executor::congest_with_budget(self.graph, self.ids, budget_bits)
            }
        }
    }
}

/// Adapter running a legacy [`Protocol`] on the arena executor: outboxes are
/// unpacked straight into the node's arena slots, and the inbox view is
/// materialized into a scratch buffer that is reused across rounds (so the
/// steady-state round loop stays allocation-free once every scratch buffer
/// has grown to its node's degree).
#[derive(Debug, Clone)]
struct Legacy<P: Protocol> {
    inner: P,
    scratch: Vec<(usize, P::Message)>,
}

impl<P: Protocol> Legacy<P> {
    fn new(inner: P) -> Self {
        Self {
            inner,
            scratch: Vec::new(),
        }
    }
}

/// Write an [`Outbox`] into arena slots. Directed messages override the
/// broadcast on their port (last write wins), as the engine always promised.
///
/// Semantics note: each `(node, port)` pair holds **one** message per round.
/// The pre-arena engine delivered (and metered) *every* entry of a
/// degenerate `Outbox` that listed the same port twice; the arena layout
/// makes the model's "one message per edge per round" rule structural, so
/// only the last write to a port survives. Pinned by
/// `duplicate_directed_port_keeps_last_message` below.
fn write_outbox<M: Clone>(outbox: Outbox<M>, out: &mut Outlet<'_, M>) {
    let Outbox {
        broadcast,
        directed,
    } = outbox;
    if let Some(msg) = broadcast {
        out.broadcast(msg);
    }
    for (port, msg) in directed {
        out.send(port, msg);
    }
}

impl<P: Protocol> BatchProtocol for Legacy<P> {
    type Message = P::Message;
    type Output = P::Output;

    fn start(&mut self, ctx: &NodeContext, out: &mut Outlet<'_, P::Message>) {
        write_outbox(self.inner.start(ctx), out);
    }

    fn round(
        &mut self,
        ctx: &NodeContext,
        round: u32,
        inbox: &Inbox<'_, P::Message>,
        out: &mut Outlet<'_, P::Message>,
    ) -> Control<P::Output> {
        self.scratch.clear();
        for (port, msg) in inbox.iter() {
            self.scratch.push((port, msg.clone()));
        }
        match self.inner.round(ctx, round, &self.scratch) {
            Step::Continue(outbox) => {
                write_outbox(outbox, out);
                Control::Continue
            }
            Step::Halt(output) => Control::Halt(output),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Outbox, Step};
    use locality_graph::prelude::*;

    /// Distance-from-sources flooding: each node halts with its BFS distance
    /// from the nearest source (classic CONGEST primitive).
    struct Flood {
        is_source: bool,
        dist: Option<u32>,
        quiet_deadline: u32,
    }

    impl Protocol for Flood {
        type Message = u32;
        type Output = Option<u32>;

        fn start(&mut self, _ctx: &NodeContext) -> Outbox<u32> {
            if self.is_source {
                self.dist = Some(0);
                Outbox::broadcast(0)
            } else {
                Outbox::silent()
            }
        }

        fn round(
            &mut self,
            _ctx: &NodeContext,
            round: u32,
            inbox: &[(usize, u32)],
        ) -> Step<u32, Option<u32>> {
            if round >= self.quiet_deadline {
                return Step::Halt(self.dist);
            }
            let best = inbox.iter().map(|&(_, d)| d + 1).min();
            match (self.dist, best) {
                (None, Some(d)) => {
                    self.dist = Some(d);
                    Step::Continue(Outbox::broadcast(d))
                }
                _ => Step::Continue(Outbox::silent()),
            }
        }
    }

    fn flood(g: &Graph, sources: &[usize], deadline: u32) -> Run<Option<u32>> {
        let ids = IdAssignment::sequential(g.node_count());
        let mut engine = Engine::congest(g, &ids);
        let nodes = (0..g.node_count()).map(|v| Flood {
            is_source: sources.contains(&v),
            dist: None,
            quiet_deadline: deadline,
        });
        engine.run(nodes, deadline + 1).expect("run completes")
    }

    #[test]
    fn flooding_matches_bfs() {
        let g = Graph::grid(4, 5);
        let run = flood(&g, &[0], 30);
        let reference = bfs_distances(&g, 0);
        for v in g.nodes() {
            assert_eq!(run.outputs[v], reference[v], "node {v}");
        }
        assert!(run.meter.congest_clean());
        assert!(run.meter.messages > 0);
    }

    #[test]
    fn multi_source_flooding() {
        let g = Graph::path(9);
        let run = flood(&g, &[0, 8], 20);
        let (reference, _) = multi_source_bfs(&g, &[0, 8]);
        for v in g.nodes() {
            assert_eq!(run.outputs[v], reference[v], "node {v}");
        }
    }

    #[test]
    fn unreachable_nodes_report_none() {
        let g = Graph::disjoint_union(&[Graph::path(3), Graph::path(3)]);
        let run = flood(&g, &[0], 10);
        assert_eq!(run.outputs[5], None);
    }

    #[test]
    fn round_limit_error() {
        struct Forever;
        impl Protocol for Forever {
            type Message = bool;
            type Output = ();
            fn start(&mut self, _: &NodeContext) -> Outbox<bool> {
                Outbox::silent()
            }
            fn round(&mut self, _: &NodeContext, _: u32, _: &[(usize, bool)]) -> Step<bool, ()> {
                Step::Continue(Outbox::silent())
            }
        }
        let g = Graph::path(2);
        let ids = IdAssignment::sequential(2);
        let mut e = Engine::local(&g, &ids);
        let err = e.run([Forever, Forever], 5).unwrap_err();
        assert_eq!(
            err,
            EngineError::RoundLimit {
                limit: 5,
                still_running: 2
            }
        );
        assert!(err.to_string().contains('5'));
    }

    #[test]
    fn wrong_node_count_error() {
        let g = Graph::path(3);
        let ids = IdAssignment::sequential(3);
        let mut e = Engine::local(&g, &ids);
        struct Noop;
        impl Protocol for Noop {
            type Message = bool;
            type Output = ();
            fn start(&mut self, _: &NodeContext) -> Outbox<bool> {
                Outbox::silent()
            }
            fn round(&mut self, _: &NodeContext, _: u32, _: &[(usize, bool)]) -> Step<bool, ()> {
                Step::Halt(())
            }
        }
        let err = e.run([Noop], 5).unwrap_err();
        assert!(matches!(
            err,
            EngineError::WrongNodeCount {
                got: 1,
                expected: 3
            }
        ));
    }

    #[test]
    fn congest_violation_detected() {
        struct Fat;
        impl Protocol for Fat {
            type Message = Vec<u64>;
            type Output = ();
            fn start(&mut self, _: &NodeContext) -> Outbox<Vec<u64>> {
                Outbox::broadcast(vec![0u64; 100]) // 64 + 6400 bits
            }
            fn round(
                &mut self,
                _: &NodeContext,
                _: u32,
                _: &[(usize, Vec<u64>)],
            ) -> Step<Vec<u64>, ()> {
                Step::Halt(())
            }
        }
        let g = Graph::path(2);
        let ids = IdAssignment::sequential(2);
        let run = Engine::congest(&g, &ids).run([Fat, Fat], 3).unwrap();
        assert_eq!(run.meter.congest_violations, 2);
        let run = Engine::local(&g, &ids).run([Fat, Fat], 3).unwrap();
        assert_eq!(run.meter.congest_violations, 0);
    }

    #[test]
    fn directed_overrides_broadcast() {
        // Node 0 broadcasts 1 but sends 9 on port 0; its single neighbor
        // must receive only the directed message.
        struct Sender;
        impl Protocol for Sender {
            type Message = u8;
            type Output = Vec<u8>;
            fn start(&mut self, ctx: &NodeContext) -> Outbox<u8> {
                if ctx.node == 0 {
                    Outbox::broadcast(1).send(0, 9)
                } else {
                    Outbox::silent()
                }
            }
            fn round(
                &mut self,
                _: &NodeContext,
                _: u32,
                inbox: &[(usize, u8)],
            ) -> Step<u8, Vec<u8>> {
                Step::Halt(inbox.iter().map(|&(_, m)| m).collect())
            }
        }
        let g = Graph::path(2);
        let ids = IdAssignment::sequential(2);
        let run = Engine::local(&g, &ids).run([Sender, Sender], 3).unwrap();
        assert_eq!(run.outputs[1], vec![9]);
    }

    #[test]
    fn rounds_counted() {
        let g = Graph::path(5);
        let run = flood(&g, &[0], 12);
        assert_eq!(run.meter.rounds, 12); // nodes halt at the quiet deadline
    }

    #[test]
    fn duplicate_directed_port_keeps_last_message() {
        // One message per edge per round is structural in the arena layout:
        // a degenerate Outbox listing a port twice delivers (and meters)
        // only the last entry.
        struct Dup;
        impl Protocol for Dup {
            type Message = u8;
            type Output = Vec<u8>;
            fn start(&mut self, ctx: &NodeContext) -> Outbox<u8> {
                if ctx.node == 0 {
                    Outbox::directed(vec![(0, 1), (0, 2)])
                } else {
                    Outbox::silent()
                }
            }
            fn round(
                &mut self,
                _: &NodeContext,
                _: u32,
                inbox: &[(usize, u8)],
            ) -> Step<u8, Vec<u8>> {
                Step::Halt(inbox.iter().map(|&(_, m)| m).collect())
            }
        }
        let g = Graph::path(2);
        let ids = IdAssignment::sequential(2);
        let run = Engine::local(&g, &ids).run([Dup, Dup], 3).unwrap();
        assert_eq!(run.outputs[1], vec![2]);
        assert_eq!(run.meter.messages, 1);
    }
}
