//! The arena-backed batched round executor.
//!
//! The [`crate::engine::Engine`] interface materializes an `Outbox`/inbox
//! `Vec` per node per round; fine for correctness work, but the per-round
//! allocations and the strictly sequential node loop dominate at scale. This
//! module is the hot path underneath it:
//!
//! - **Message arenas.** Every directed edge `(u, port)` owns a fixed slot in
//!   a flat arena laid out by the graph's CSR edge index
//!   ([`locality_graph::Graph::edge_slots`]). A node *sends* by writing its
//!   own contiguous slot segment and *receives* by reading the mirrored slots
//!   ([`locality_graph::Graph::mirror_slots`]) of the opposite arena.
//!   Delivery is therefore a single metering-and-clear pass that flips the
//!   read/write arenas — no queues, no copying, and **zero heap allocation
//!   per round** once the arenas exist (for messages that do not themselves
//!   own heap memory).
//! - **Deterministic parallelism.** Each node writes only its own slot
//!   segment and its own output cell, so node steps are embarrassingly
//!   parallel *and bit-identical to the sequential order*:
//!   [`Executor::run_parallel`] chunks the nodes across
//!   [`std::thread::scope`] threads and produces exactly the outputs and
//!   [`CostMeter`] of [`Executor::run`]. The `determinism-checks` cargo
//!   feature makes `run_parallel` re-run sequentially and assert equality.
//!
//! Protocols for this executor implement [`BatchProtocol`], writing messages
//! through an [`Outlet`] and reading them through an [`Inbox`] view instead
//! of building per-round collections. The legacy [`crate::node::Protocol`]
//! trait is adapted onto this executor by [`crate::engine::Engine`], so both
//! interfaces are metered by the same code.

use crate::cost::CostMeter;
use crate::engine::{EngineError, Mode, Run};
use crate::faults::{Delivery, FaultPlan, FaultRun, NodeOutcome};
use crate::node::NodeContext;
use crate::wire::WireSize;
use locality_graph::ids::IdAssignment;
use locality_graph::Graph;

/// A node's decision after a batched round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Control<O> {
    /// Keep running (messages, if any, were written through the [`Outlet`]).
    Continue,
    /// Terminate with this output. Anything written through the [`Outlet`]
    /// this round is discarded: a halting node is silent.
    Halt(O),
}

/// Read view of one node's inbox for the current round.
///
/// Port `p` carries a message exactly when the neighbor on port `p` wrote its
/// mirrored slot last round; the view resolves mirrors through the graph's
/// precomputed reverse-edge index, so each lookup is `O(1)`.
#[derive(Debug)]
pub struct Inbox<'a, M> {
    arena: &'a [Option<M>],
    mirrors: &'a [usize],
}

impl<'a, M> Inbox<'a, M> {
    /// The receiving node's degree (ports are `0..degree`).
    pub fn degree(&self) -> usize {
        self.mirrors.len()
    }

    /// The message received on `port`, if any.
    ///
    /// # Panics
    /// Panics if `port >= degree`.
    pub fn get(&self, port: usize) -> Option<&'a M> {
        self.arena[self.mirrors[port]].as_ref()
    }

    /// Iterate the occupied ports in ascending port order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &'a M)> + '_ {
        self.mirrors
            .iter()
            .enumerate()
            .filter_map(|(port, &slot)| self.arena[slot].as_ref().map(|m| (port, m)))
    }

    /// Whether no message arrived this round.
    pub fn is_empty(&self) -> bool {
        self.iter().next().is_none()
    }
}

/// Write view of one node's outgoing edge slots for the current round.
///
/// The slots start empty each round; writing the same port twice keeps the
/// last message (a later [`Outlet::send`] overrides an earlier
/// [`Outlet::broadcast`] on that port, matching the engine's semantics).
#[derive(Debug)]
pub struct Outlet<'a, M> {
    node: usize,
    slots: &'a mut [Option<M>],
}

impl<M: Clone> Outlet<'_, M> {
    /// The sending node's degree (ports are `0..degree`).
    pub fn degree(&self) -> usize {
        self.slots.len()
    }

    /// Send `msg` on `port`.
    ///
    /// # Panics
    /// Panics if `port >= degree`.
    pub fn send(&mut self, port: usize, msg: M) {
        assert!(
            port < self.slots.len(),
            "node {} sent on invalid port {}",
            self.node,
            port
        );
        self.slots[port] = Some(msg);
    }

    /// Send `msg` to every neighbor (one directed message per port — CONGEST
    /// accounting charges each of them).
    pub fn broadcast(&mut self, msg: M) {
        if let Some((last, rest)) = self.slots.split_last_mut() {
            for slot in rest {
                *slot = Some(msg.clone());
            }
            *last = Some(msg);
        }
    }
}

/// A synchronous protocol over the arena executor, one instance per node.
///
/// Like [`crate::node::Protocol`], but messages are exchanged through slot
/// views instead of per-round collections, so a well-behaved implementation
/// allocates nothing in its `round`.
pub trait BatchProtocol {
    /// Message type (must report its wire size for CONGEST accounting).
    type Message: Clone + WireSize;
    /// Per-node output.
    type Output;

    /// Write the messages for round 1.
    fn start(&mut self, ctx: &NodeContext, out: &mut Outlet<'_, Self::Message>);

    /// Receive round `round`'s inbox; write replies; continue or halt.
    fn round(
        &mut self,
        ctx: &NodeContext,
        round: u32,
        inbox: &Inbox<'_, Self::Message>,
        out: &mut Outlet<'_, Self::Message>,
    ) -> Control<Self::Output>;
}

/// The arena-backed executor for one graph.
///
/// Construction mirrors [`crate::engine::Engine`]; [`Executor::run`] is the
/// sequential reference order and [`Executor::run_parallel`] the chunked
/// parallel order, which is guaranteed (and under the `determinism-checks`
/// feature, asserted) to produce bit-identical results.
///
/// # Example
/// ```
/// use locality_graph::prelude::*;
/// use locality_sim::executor::{BatchProtocol, Control, Executor, Inbox, Outlet};
/// use locality_sim::node::NodeContext;
///
/// /// Every node halts with the number of neighbors that greeted it.
/// struct Hello;
/// impl BatchProtocol for Hello {
///     type Message = u64;
///     type Output = usize;
///     fn start(&mut self, ctx: &NodeContext, out: &mut Outlet<'_, u64>) {
///         out.broadcast(ctx.id);
///     }
///     fn round(
///         &mut self,
///         _ctx: &NodeContext,
///         _round: u32,
///         inbox: &Inbox<'_, u64>,
///         _out: &mut Outlet<'_, u64>,
///     ) -> Control<usize> {
///         Control::Halt(inbox.iter().count())
///     }
/// }
///
/// let g = Graph::cycle(5);
/// let ids = IdAssignment::sequential(5);
/// let run = Executor::congest(&g, &ids).run((0..5).map(|_| Hello), 10).unwrap();
/// assert!(run.outputs.iter().all(|&d| d == 2));
/// assert_eq!(run.meter.rounds, 1);
/// ```
#[derive(Debug)]
pub struct Executor<'g> {
    graph: &'g Graph,
    ids: &'g IdAssignment,
    mode: Mode,
}

impl<'g> Executor<'g> {
    /// A LOCAL-model executor (unbounded messages).
    ///
    /// # Panics
    /// Panics if `ids` does not match `graph`.
    pub fn local(graph: &'g Graph, ids: &'g IdAssignment) -> Self {
        assert!(ids.matches(graph), "id assignment must match graph");
        Self {
            graph,
            ids,
            mode: Mode::Local,
        }
    }

    /// A CONGEST-model executor with the standard budget
    /// ([`Mode::default_congest`]).
    ///
    /// # Panics
    /// Panics if `ids` does not match `graph`.
    pub fn congest(graph: &'g Graph, ids: &'g IdAssignment) -> Self {
        assert!(ids.matches(graph), "id assignment must match graph");
        Self {
            graph,
            ids,
            mode: Mode::default_congest(graph),
        }
    }

    /// A CONGEST-model executor with an explicit per-message budget.
    ///
    /// # Panics
    /// Panics if `ids` does not match `graph`.
    pub fn congest_with_budget(graph: &'g Graph, ids: &'g IdAssignment, budget_bits: u64) -> Self {
        assert!(ids.matches(graph), "id assignment must match graph");
        Self {
            graph,
            ids,
            mode: Mode::Congest { budget_bits },
        }
    }

    /// The communication mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    fn budget(&self) -> Option<u64> {
        match self.mode {
            Mode::Local => None,
            Mode::Congest { budget_bits } => Some(budget_bits),
        }
    }

    /// Execute `protocols` sequentially (the reference order).
    ///
    /// # Errors
    /// [`EngineError::WrongNodeCount`] or [`EngineError::RoundLimit`].
    pub fn run<P: BatchProtocol>(
        &mut self,
        protocols: impl IntoIterator<Item = P>,
        max_rounds: u32,
    ) -> Result<Run<P::Output>, EngineError> {
        self.run_metered(protocols, max_rounds, |_| 0)
    }

    /// Like [`Executor::run`], but additionally sums per-node random-bit
    /// usage reported by `random_bits(&protocol)` after completion.
    ///
    /// # Errors
    /// [`EngineError::WrongNodeCount`] or [`EngineError::RoundLimit`].
    pub fn run_metered<P: BatchProtocol>(
        &mut self,
        protocols: impl IntoIterator<Item = P>,
        max_rounds: u32,
        random_bits: impl Fn(&P) -> u64,
    ) -> Result<Run<P::Output>, EngineError> {
        let nodes: Vec<P> = protocols.into_iter().collect();
        let graph = self.graph;
        self.drive(
            nodes,
            max_rounds,
            &random_bits,
            |nodes, outputs, write, read, contexts, round| {
                step_chunk(
                    graph,
                    contexts,
                    0,
                    nodes,
                    outputs,
                    write,
                    0,
                    read,
                    &[],
                    round,
                )
            },
        )
    }

    /// Execute `protocols` with node steps chunked across `threads` scoped
    /// threads (`0` = available parallelism). Outputs and meter are
    /// bit-identical to [`Executor::run`]: every node writes only its own
    /// slot segment and output cell, and metering is a deterministic pass
    /// over the arena in slot order.
    ///
    /// The `Clone`/`PartialEq`/`Debug` bounds exist so the
    /// `determinism-checks` cargo feature can re-run the protocol
    /// sequentially and assert the equivalence; the bounds are required
    /// unconditionally so enabling the feature is additive (it changes
    /// behavior, never the API).
    ///
    /// # Errors
    /// [`EngineError::WrongNodeCount`] or [`EngineError::RoundLimit`].
    pub fn run_parallel<P>(
        &mut self,
        protocols: impl IntoIterator<Item = P>,
        max_rounds: u32,
        threads: usize,
    ) -> Result<Run<P::Output>, EngineError>
    where
        P: BatchProtocol + Send + Clone,
        P::Message: Send + Sync,
        P::Output: Send + PartialEq + std::fmt::Debug,
    {
        self.run_parallel_metered(protocols, max_rounds, threads, |_| 0)
    }

    /// [`Executor::run_parallel`] with random-bit accounting, as in
    /// [`Executor::run_metered`].
    ///
    /// # Errors
    /// [`EngineError::WrongNodeCount`] or [`EngineError::RoundLimit`].
    pub fn run_parallel_metered<P>(
        &mut self,
        protocols: impl IntoIterator<Item = P>,
        max_rounds: u32,
        threads: usize,
        random_bits: impl Fn(&P) -> u64,
    ) -> Result<Run<P::Output>, EngineError>
    where
        P: BatchProtocol + Send + Clone,
        P::Message: Send + Sync,
        P::Output: Send + PartialEq + std::fmt::Debug,
    {
        let nodes: Vec<P> = protocols.into_iter().collect();
        #[cfg(feature = "determinism-checks")]
        {
            let reference = self.run_metered(nodes.clone(), max_rounds, &random_bits);
            let parallel = self.run_parallel_inner(nodes, max_rounds, threads, &random_bits);
            match (&reference, &parallel) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.meter, b.meter,
                        "determinism check: parallel meter diverged from sequential"
                    );
                    assert_eq!(
                        a.outputs, b.outputs,
                        "determinism check: parallel outputs diverged from sequential"
                    );
                }
                (Err(a), Err(b)) => {
                    assert_eq!(a, b, "determinism check: error outcomes diverged");
                }
                _ => panic!("determinism check: parallel and sequential outcomes diverged"), // audit: allow(panic) -- determinism diagnostic: divergence must abort loudly, not be smoothed over
            }
            parallel
        }
        #[cfg(not(feature = "determinism-checks"))]
        {
            self.run_parallel_inner(nodes, max_rounds, threads, &random_bits)
        }
    }

    fn run_parallel_inner<P>(
        &mut self,
        nodes: Vec<P>,
        max_rounds: u32,
        threads: usize,
        random_bits: &impl Fn(&P) -> u64,
    ) -> Result<Run<P::Output>, EngineError>
    where
        P: BatchProtocol + Send,
        P::Message: Send + Sync,
        P::Output: Send,
    {
        let n = self.graph.node_count();
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        };
        let chunks = threads.min(n.max(1));
        if chunks <= 1 {
            return self.run_metered(nodes, max_rounds, random_bits);
        }
        let bounds = chunk_bounds(n, chunks);
        let graph = self.graph;
        self.drive(
            nodes,
            max_rounds,
            random_bits,
            |nodes, outputs, write, read, contexts, round| {
                parallel_step(
                    graph,
                    &bounds,
                    contexts,
                    nodes,
                    outputs,
                    write,
                    read,
                    &[],
                    round,
                )
            },
        )
    }

    /// The shared round loop: arena setup, the per-round
    /// meter-clear-and-flip delivery pass, halt bookkeeping, and final
    /// accounting. `step` runs all still-active nodes for one round and
    /// returns how many are still running.
    fn drive<P: BatchProtocol>(
        &mut self,
        mut nodes: Vec<P>,
        max_rounds: u32,
        random_bits: &impl Fn(&P) -> u64,
        mut step: impl FnMut(
            &mut [P],
            &mut [Option<P::Output>],
            &mut [Option<P::Message>],
            &[Option<P::Message>],
            &[NodeContext],
            u32,
        ) -> usize,
    ) -> Result<Run<P::Output>, EngineError> {
        let n = self.graph.node_count();
        if nodes.len() != n {
            return Err(EngineError::WrongNodeCount {
                got: nodes.len(),
                expected: n,
            });
        }
        let contexts: Vec<NodeContext> = (0..n)
            .map(|v| NodeContext {
                node: v,
                id: self.ids.id_of(v),
                degree: self.graph.degree(v),
                n,
            })
            .collect();
        let slots = self.graph.directed_edge_count();
        // The two arenas; after setup the round loop only moves `Option`s in
        // place and swaps the buffers, never reallocating.
        let mut read: Vec<Option<P::Message>> = (0..slots).map(|_| None).collect();
        let mut write: Vec<Option<P::Message>> = (0..slots).map(|_| None).collect();
        let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        let budget = self.budget();
        let mut meter = CostMeter::default();

        for v in 0..n {
            let mut out = Outlet {
                node: v,
                slots: &mut write[self.graph.edge_slots(v)],
            };
            nodes[v].start(&contexts[v], &mut out);
        }

        let mut rounds_used = 0;
        if n > 0 && max_rounds == 0 {
            return Err(EngineError::RoundLimit {
                limit: 0,
                still_running: n,
            });
        }
        for round in 1..=max_rounds {
            // Deliver: meter what was just written, clear the consumed arena,
            // flip. Readers then see the fresh messages through their mirror
            // slots; no copying happens.
            for msg in write.iter().flatten() {
                meter.record_message(msg.wire_bits(), budget);
            }
            for slot in read.iter_mut() {
                *slot = None;
            }
            std::mem::swap(&mut read, &mut write);

            let still_running = step(
                &mut nodes,
                &mut outputs,
                &mut write,
                &read,
                &contexts,
                round,
            );
            rounds_used = round;
            if still_running == 0 {
                break;
            }
            if round == max_rounds {
                return Err(EngineError::RoundLimit {
                    limit: max_rounds,
                    still_running,
                });
            }
        }

        meter.rounds = rounds_used as u64;
        meter.random_bits = nodes.iter().map(random_bits).sum();
        let outputs = outputs
            .into_iter()
            .map(|h| h.expect("all nodes halted")) // audit: allow(panic) -- executor ran to quiescence on the line above; a non-halted node is a logic bug
            .collect();
        Ok(Run {
            outputs,
            meter,
            budget_bits: budget,
        })
    }

    /// Execute `protocols` sequentially under the fault schedule `plan`.
    ///
    /// Faults are injected at the delivery boundary between the write and
    /// read arenas (see [`crate::faults`] for the exact semantics). A plan
    /// with all rates zero takes exactly the fault-free delivery path: the
    /// outcomes and meter equal [`Executor::run`]'s bit for bit.
    ///
    /// # Errors
    /// [`EngineError::WrongNodeCount`], or [`EngineError::RoundLimit`] when
    /// live (non-crashed, non-halted) nodes remain at the budget.
    pub fn run_with_faults<P: BatchProtocol>(
        &mut self,
        protocols: impl IntoIterator<Item = P>,
        max_rounds: u32,
        plan: &FaultPlan,
    ) -> Result<FaultRun<P::Output>, EngineError> {
        self.run_with_faults_metered(protocols, max_rounds, plan, |_| 0)
    }

    /// [`Executor::run_with_faults`] with random-bit accounting, as in
    /// [`Executor::run_metered`].
    ///
    /// # Errors
    /// [`EngineError::WrongNodeCount`] or [`EngineError::RoundLimit`].
    pub fn run_with_faults_metered<P: BatchProtocol>(
        &mut self,
        protocols: impl IntoIterator<Item = P>,
        max_rounds: u32,
        plan: &FaultPlan,
        random_bits: impl Fn(&P) -> u64,
    ) -> Result<FaultRun<P::Output>, EngineError> {
        let nodes: Vec<P> = protocols.into_iter().collect();
        let graph = self.graph;
        self.drive_faulty(
            nodes,
            max_rounds,
            plan,
            &random_bits,
            |nodes, outputs, write, read, contexts, crashed, round| {
                step_chunk(
                    graph, contexts, 0, nodes, outputs, write, 0, read, crashed, round,
                )
            },
        )
    }

    /// [`Executor::run_with_faults`] with node steps chunked across
    /// `threads` scoped threads (`0` = available parallelism). Every fault
    /// decision is a pure function of the plan and the `(round, slot)` or
    /// node coordinates, so outcomes and meter are bit-identical to the
    /// sequential order for every thread count (asserted under the
    /// `determinism-checks` cargo feature, with the same unconditional
    /// bounds as [`Executor::run_parallel`]).
    ///
    /// # Errors
    /// [`EngineError::WrongNodeCount`] or [`EngineError::RoundLimit`].
    pub fn run_parallel_with_faults<P>(
        &mut self,
        protocols: impl IntoIterator<Item = P>,
        max_rounds: u32,
        threads: usize,
        plan: &FaultPlan,
    ) -> Result<FaultRun<P::Output>, EngineError>
    where
        P: BatchProtocol + Send + Clone,
        P::Message: Send + Sync,
        P::Output: Send + PartialEq + std::fmt::Debug,
    {
        let nodes: Vec<P> = protocols.into_iter().collect();
        #[cfg(feature = "determinism-checks")]
        {
            let reference = self.run_with_faults(nodes.clone(), max_rounds, plan);
            let parallel = self.run_parallel_with_faults_inner(nodes, max_rounds, threads, plan);
            match (&reference, &parallel) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.meter, b.meter,
                        "determinism check: faulty parallel meter diverged from sequential"
                    );
                    assert_eq!(
                        a.outcomes, b.outcomes,
                        "determinism check: faulty parallel outcomes diverged from sequential"
                    );
                }
                (Err(a), Err(b)) => {
                    assert_eq!(a, b, "determinism check: faulty error outcomes diverged");
                }
                _ => panic!("determinism check: faulty parallel and sequential outcomes diverged"), // audit: allow(panic) -- determinism diagnostic: divergence must abort loudly, not be smoothed over
            }
            parallel
        }
        #[cfg(not(feature = "determinism-checks"))]
        {
            self.run_parallel_with_faults_inner(nodes, max_rounds, threads, plan)
        }
    }

    fn run_parallel_with_faults_inner<P>(
        &mut self,
        nodes: Vec<P>,
        max_rounds: u32,
        threads: usize,
        plan: &FaultPlan,
    ) -> Result<FaultRun<P::Output>, EngineError>
    where
        P: BatchProtocol + Send,
        P::Message: Send + Sync,
        P::Output: Send,
    {
        let n = self.graph.node_count();
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        };
        let chunks = threads.min(n.max(1));
        if chunks <= 1 {
            return self.run_with_faults_metered(nodes, max_rounds, plan, |_| 0);
        }
        let bounds = chunk_bounds(n, chunks);
        let graph = self.graph;
        self.drive_faulty(
            nodes,
            max_rounds,
            plan,
            &|_| 0,
            |nodes, outputs, write, read, contexts, crashed, round| {
                parallel_step(
                    graph, &bounds, contexts, nodes, outputs, write, read, crashed, round,
                )
            },
        )
    }

    /// The faulty round loop: like [`Executor::drive`], but the delivery
    /// pass routes each written message through the plan's
    /// [`FaultPlan::message_fate`] (drop / delay / duplicate), merges
    /// matured late copies with seeded reordering, and masks crash-stopped
    /// nodes out of the step.
    ///
    /// With a pass-through plan the delivery pass degenerates to exactly
    /// the fault-free one — same `record_message` calls in the same slot
    /// order — which is what makes rate-0 plans bit-identical to
    /// [`Executor::drive`].
    fn drive_faulty<P: BatchProtocol>(
        &mut self,
        mut nodes: Vec<P>,
        max_rounds: u32,
        plan: &FaultPlan,
        random_bits: &impl Fn(&P) -> u64,
        mut step: impl FnMut(
            &mut [P],
            &mut [Option<P::Output>],
            &mut [Option<P::Message>],
            &[Option<P::Message>],
            &[NodeContext],
            &[bool],
            u32,
        ) -> usize,
    ) -> Result<FaultRun<P::Output>, EngineError> {
        let n = self.graph.node_count();
        if nodes.len() != n {
            return Err(EngineError::WrongNodeCount {
                got: nodes.len(),
                expected: n,
            });
        }
        let contexts: Vec<NodeContext> = (0..n)
            .map(|v| NodeContext {
                node: v,
                id: self.ids.id_of(v),
                degree: self.graph.degree(v),
                n,
            })
            .collect();
        let slots = self.graph.directed_edge_count();
        let mut read: Vec<Option<P::Message>> = (0..slots).map(|_| None).collect();
        let mut write: Vec<Option<P::Message>> = (0..slots).map(|_| None).collect();
        let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        let budget = self.budget();
        let mut meter = CostMeter::default();

        let crash_at: Vec<Option<u32>> = (0..n).map(|v| plan.crash_round_of(v)).collect();
        let mut crashed: Vec<bool> = crash_at.iter().map(|c| *c == Some(0)).collect();
        // Ring of future deliveries: `pending[r % horizon]` holds the late
        // copies maturing at round `r` (delays are `< horizon`, so a bucket
        // is always drained before it is reused).
        let horizon = plan.delay_horizon();
        let mut pending: Vec<Vec<(usize, P::Message)>> = (0..horizon).map(|_| Vec::new()).collect();

        for v in 0..n {
            if crashed[v] {
                continue; // a node crashing at round 0 never starts
            }
            let mut out = Outlet {
                node: v,
                slots: &mut write[self.graph.edge_slots(v)],
            };
            nodes[v].start(&contexts[v], &mut out);
        }

        let mut rounds_used = 0;
        if n > 0 && max_rounds == 0 {
            let still_running = crashed.iter().filter(|&&c| !c).count();
            if still_running > 0 {
                return Err(EngineError::RoundLimit {
                    limit: 0,
                    still_running,
                });
            }
        }
        for round in 1..=max_rounds {
            // Delivery with fault injection: every fresh send is routed by
            // its fate, then this round's matured late copies are merged.
            for slot in read.iter_mut() {
                *slot = None;
            }
            for slot in 0..slots {
                let Some(msg) = write[slot].take() else {
                    continue;
                };
                let fate = plan.message_fate(round, slot);
                if let Some(extra) = fate.duplicate {
                    meter.duplicated += 1;
                    pending[(round as usize + extra as usize) % horizon].push((slot, msg.clone()));
                }
                match fate.primary {
                    Delivery::Deliver => {
                        meter.record_message(msg.wire_bits(), budget);
                        read[slot] = Some(msg);
                    }
                    Delivery::Drop => meter.dropped += 1,
                    Delivery::Delay(extra) => {
                        meter.delayed += 1;
                        pending[(round as usize + extra as usize) % horizon].push((slot, msg));
                    }
                }
            }
            let mut matured = std::mem::take(&mut pending[round as usize % horizon]);
            for (slot, msg) in matured.drain(..) {
                // A late copy still arrives (and is metered); when it races
                // a message already delivered on the same edge this round,
                // the seeded reorder coin picks the copy the receiver
                // observes and the superseded one counts as dropped.
                meter.record_message(msg.wire_bits(), budget);
                if read[slot].is_none() {
                    read[slot] = Some(msg);
                } else {
                    meter.dropped += 1;
                    if plan.late_wins(round, slot) {
                        read[slot] = Some(msg);
                    }
                }
            }
            pending[round as usize % horizon] = matured; // keep the allocation

            for (v, c) in crash_at.iter().enumerate() {
                if *c == Some(round) {
                    crashed[v] = true; // stops executing from this round on
                }
            }

            let still_running = step(
                &mut nodes,
                &mut outputs,
                &mut write,
                &read,
                &contexts,
                &crashed,
                round,
            );
            rounds_used = round;
            if still_running == 0 {
                break;
            }
            if round == max_rounds {
                return Err(EngineError::RoundLimit {
                    limit: max_rounds,
                    still_running,
                });
            }
        }

        meter.rounds = rounds_used as u64;
        meter.random_bits = nodes.iter().map(random_bits).sum();
        let outcomes = outputs
            .into_iter()
            .zip(&crash_at)
            .map(|(out, crash)| match out {
                Some(o) => NodeOutcome::Halted(o),
                // The loop only exits success once every live node halted,
                // so an output-less node necessarily crashed.
                None => NodeOutcome::Crashed {
                    round: crash.unwrap_or(0),
                },
            })
            .collect();
        Ok(FaultRun {
            outcomes,
            meter,
            budget_bits: budget,
        })
    }
}

/// Contiguous node chunk bounds for `chunks`-way parallel stepping.
fn chunk_bounds(n: usize, chunks: usize) -> Vec<(usize, usize)> {
    let per = n.div_ceil(chunks);
    (0..chunks)
        .map(|c| ((c * per).min(n), ((c + 1) * per).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// One parallel round: split nodes/outputs/write along `bounds` (slot
/// segments follow the CSR offsets) and step every chunk on its own scoped
/// thread. Shared by the fault-free and faulty drivers (`crashed` is empty
/// on the fault-free path).
#[allow(clippy::too_many_arguments)]
fn parallel_step<P>(
    graph: &Graph,
    bounds: &[(usize, usize)],
    contexts: &[NodeContext],
    nodes: &mut [P],
    outputs: &mut [Option<P::Output>],
    write: &mut [Option<P::Message>],
    read: &[Option<P::Message>],
    crashed: &[bool],
    round: u32,
) -> usize
where
    P: BatchProtocol + Send,
    P::Message: Send + Sync,
    P::Output: Send,
{
    let n = graph.node_count();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(bounds.len());
        let mut nodes_rest = nodes;
        let mut outputs_rest = outputs;
        let mut write_rest = write;
        let mut consumed_nodes = 0usize;
        let mut consumed_slots = 0usize;
        for &(lo, hi) in bounds {
            let slot_hi = if hi == n {
                graph.directed_edge_count()
            } else {
                graph.edge_slots(hi).start
            };
            let (node_chunk, nr) = nodes_rest.split_at_mut(hi - lo);
            let (out_chunk, or) = outputs_rest.split_at_mut(hi - lo);
            let (write_chunk, wr) = write_rest.split_at_mut(slot_hi - consumed_slots);
            nodes_rest = nr;
            outputs_rest = or;
            write_rest = wr;
            let node_base = consumed_nodes;
            let slot_base = consumed_slots;
            consumed_nodes = hi;
            consumed_slots = slot_hi;
            handles.push(scope.spawn(move || {
                step_chunk(
                    graph,
                    contexts,
                    node_base,
                    node_chunk,
                    out_chunk,
                    write_chunk,
                    slot_base,
                    read,
                    crashed,
                    round,
                )
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("executor worker panicked")) // audit: allow(panic) -- a panicked worker already lost the run; propagating the abort is sound
            .sum()
    })
}

/// Step one contiguous chunk of nodes; returns how many are still running.
///
/// `nodes`, `outputs` and `write` are the chunk's slices (node range
/// `node_base..node_base + nodes.len()`, slot range starting at `slot_base`);
/// `read`, `contexts` and `crashed` are the full arrays (`crashed` may be
/// empty, meaning no node ever crashes). Writes land only in the chunk's
/// own slices, which is what makes parallel execution deterministic.
// audit: no-alloc
#[allow(clippy::too_many_arguments)]
fn step_chunk<P: BatchProtocol>(
    graph: &Graph,
    contexts: &[NodeContext],
    node_base: usize,
    nodes: &mut [P],
    outputs: &mut [Option<P::Output>],
    write: &mut [Option<P::Message>],
    slot_base: usize,
    read: &[Option<P::Message>],
    crashed: &[bool],
    round: u32,
) -> usize {
    let mut still_running = 0;
    for (i, node) in nodes.iter_mut().enumerate() {
        if outputs[i].is_some() {
            continue;
        }
        let v = node_base + i;
        if !crashed.is_empty() && crashed[v] {
            continue;
        }
        let range = graph.edge_slots(v);
        let (lo, hi) = (range.start - slot_base, range.end - slot_base);
        let inbox = Inbox {
            arena: read,
            mirrors: graph.mirror_slots(v),
        };
        let mut out = Outlet {
            node: v,
            slots: &mut write[lo..hi],
        };
        match node.round(&contexts[v], round, &inbox, &mut out) {
            Control::Continue => still_running += 1,
            Control::Halt(output) => {
                outputs[i] = Some(output);
                // A halting node is silent: discard anything it wrote.
                for slot in &mut write[lo..hi] {
                    *slot = None;
                }
            }
        }
    }
    still_running
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_graph::prelude::*;

    /// BFS flooding (mirrors the engine test, through the batched interface).
    #[derive(Debug, Clone)]
    struct Flood {
        is_source: bool,
        dist: Option<u32>,
        deadline: u32,
    }

    impl BatchProtocol for Flood {
        type Message = u32;
        type Output = Option<u32>;

        fn start(&mut self, _ctx: &NodeContext, out: &mut Outlet<'_, u32>) {
            if self.is_source {
                self.dist = Some(0);
                out.broadcast(0);
            }
        }

        fn round(
            &mut self,
            _ctx: &NodeContext,
            round: u32,
            inbox: &Inbox<'_, u32>,
            out: &mut Outlet<'_, u32>,
        ) -> Control<Option<u32>> {
            if round >= self.deadline {
                return Control::Halt(self.dist);
            }
            if self.dist.is_none() {
                if let Some(d) = inbox.iter().map(|(_, &d)| d + 1).min() {
                    self.dist = Some(d);
                    out.broadcast(d);
                }
            }
            Control::Continue
        }
    }

    fn flood_protocols(g: &Graph, sources: &[usize], deadline: u32) -> Vec<Flood> {
        (0..g.node_count())
            .map(|v| Flood {
                is_source: sources.contains(&v),
                dist: None,
                deadline,
            })
            .collect()
    }

    #[test]
    fn sequential_flood_matches_bfs() {
        let g = Graph::grid(5, 7);
        let ids = IdAssignment::sequential(g.node_count());
        let run = Executor::congest(&g, &ids)
            .run(flood_protocols(&g, &[0], 30), 31)
            .unwrap();
        let reference = bfs_distances(&g, 0);
        for v in g.nodes() {
            assert_eq!(run.outputs[v], reference[v], "node {v}");
        }
        assert!(run.congest_clean());
        assert_eq!(run.budget_bits, Some(8 * g.log2_n() as u64));
    }

    #[test]
    fn parallel_equals_sequential_on_flood() {
        let g = Graph::grid(9, 11);
        let ids = IdAssignment::sequential(g.node_count());
        let seq = Executor::congest(&g, &ids)
            .run(flood_protocols(&g, &[3, 50], 40), 41)
            .unwrap();
        for threads in [2, 3, 8, 64] {
            let par = Executor::congest(&g, &ids)
                .run_parallel(flood_protocols(&g, &[3, 50], 40), 41, threads)
                .unwrap();
            assert_eq!(par.outputs, seq.outputs, "threads={threads}");
            assert_eq!(par.meter, seq.meter, "threads={threads}");
        }
    }

    #[test]
    fn parallel_handles_edgeless_and_tiny_graphs() {
        for g in [Graph::empty(0), Graph::empty(5), Graph::path(2)] {
            let ids = IdAssignment::sequential(g.node_count());
            let run = Executor::local(&g, &ids)
                .run_parallel(flood_protocols(&g, &[], 3), 4, 4)
                .unwrap();
            assert_eq!(run.outputs.len(), g.node_count());
            assert!(run.outputs.iter().all(|d| d.is_none()));
        }
    }

    #[test]
    fn round_limit_reported_with_still_running() {
        #[derive(Debug, Clone)]
        struct Forever;
        impl BatchProtocol for Forever {
            type Message = bool;
            type Output = ();
            fn start(&mut self, _: &NodeContext, _: &mut Outlet<'_, bool>) {}
            fn round(
                &mut self,
                _: &NodeContext,
                _: u32,
                _: &Inbox<'_, bool>,
                _: &mut Outlet<'_, bool>,
            ) -> Control<()> {
                Control::Continue
            }
        }
        let g = Graph::path(3);
        let ids = IdAssignment::sequential(3);
        let err = Executor::local(&g, &ids)
            .run([Forever, Forever, Forever], 4)
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::RoundLimit {
                limit: 4,
                still_running: 3
            }
        );
        // Zero-round budgets with live nodes are a limit error, not a panic.
        let err0 = Executor::local(&g, &ids)
            .run([Forever, Forever, Forever], 0)
            .unwrap_err();
        assert!(matches!(err0, EngineError::RoundLimit { limit: 0, .. }));
    }

    #[test]
    fn halting_node_discards_its_writes() {
        // Node 0 writes a message and halts in the same round; node 1 must
        // never receive it.
        #[derive(Debug, Clone)]
        struct WriteThenHalt;
        impl BatchProtocol for WriteThenHalt {
            type Message = u8;
            type Output = usize;
            fn start(&mut self, _: &NodeContext, _: &mut Outlet<'_, u8>) {}
            fn round(
                &mut self,
                ctx: &NodeContext,
                round: u32,
                inbox: &Inbox<'_, u8>,
                out: &mut Outlet<'_, u8>,
            ) -> Control<usize> {
                if ctx.node == 0 {
                    out.broadcast(7);
                    return Control::Halt(0);
                }
                if round >= 3 {
                    return Control::Halt(inbox.iter().count());
                }
                Control::Continue
            }
        }
        let g = Graph::path(2);
        let ids = IdAssignment::sequential(2);
        let run = Executor::local(&g, &ids)
            .run([WriteThenHalt, WriteThenHalt], 5)
            .unwrap();
        assert_eq!(run.outputs[1], 0);
        assert_eq!(run.meter.messages, 0);
    }

    #[test]
    fn directed_send_overrides_broadcast_slot() {
        #[derive(Debug, Clone)]
        struct Sender;
        impl BatchProtocol for Sender {
            type Message = u8;
            type Output = Vec<u8>;
            fn start(&mut self, ctx: &NodeContext, out: &mut Outlet<'_, u8>) {
                if ctx.node == 1 {
                    out.broadcast(1);
                    out.send(0, 9);
                }
            }
            fn round(
                &mut self,
                _: &NodeContext,
                _: u32,
                inbox: &Inbox<'_, u8>,
                _: &mut Outlet<'_, u8>,
            ) -> Control<Vec<u8>> {
                Control::Halt(inbox.iter().map(|(_, &m)| m).collect())
            }
        }
        let g = Graph::path(3); // node 1 has ports 0 -> node 0, 1 -> node 2
        let ids = IdAssignment::sequential(3);
        let run = Executor::local(&g, &ids)
            .run([Sender, Sender, Sender], 3)
            .unwrap();
        assert_eq!(run.outputs[0], vec![9]);
        assert_eq!(run.outputs[2], vec![1]);
        assert_eq!(run.meter.messages, 2);
    }

    #[test]
    fn wrong_node_count_detected() {
        let g = Graph::path(3);
        let ids = IdAssignment::sequential(3);
        let err = Executor::local(&g, &ids)
            .run(flood_protocols(&Graph::path(2), &[], 3), 5)
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::WrongNodeCount {
                got: 2,
                expected: 3
            }
        ));
    }

    #[test]
    fn pass_through_fault_plan_equals_fault_free_run() {
        let g = Graph::grid(6, 9);
        let ids = IdAssignment::sequential(g.node_count());
        let plain = Executor::congest(&g, &ids)
            .run(flood_protocols(&g, &[0, 17], 25), 26)
            .unwrap();
        let faulty = Executor::congest(&g, &ids)
            .run_with_faults(flood_protocols(&g, &[0, 17], 25), 26, &FaultPlan::new(3))
            .unwrap();
        assert_eq!(faulty.meter, plain.meter);
        assert_eq!(faulty.budget_bits, plain.budget_bits);
        assert_eq!(faulty.into_outputs(), Some(plain.outputs));
    }

    #[test]
    fn crashed_node_stops_flooding_and_is_reported() {
        // A path with the only source at one end: crashing the middle node
        // before it relays partitions the flood.
        let g = Graph::path(5);
        let ids = IdAssignment::sequential(5);
        let plan = FaultPlan::new(0).with_crash_at(2, 1);
        let run = Executor::local(&g, &ids)
            .run_with_faults(flood_protocols(&g, &[0], 20), 21, &plan)
            .unwrap();
        assert_eq!(run.crashed_count(), 1);
        assert!(run.outcomes[2].is_crashed());
        assert_eq!(run.outcomes[1], NodeOutcome::Halted(Some(1)));
        // Beyond the crash, the distance never arrives.
        assert_eq!(run.outcomes[3], NodeOutcome::Halted(None));
        assert_eq!(run.outcomes[4], NodeOutcome::Halted(None));
    }

    #[test]
    fn crash_at_round_zero_means_never_started() {
        let g = Graph::path(3);
        let ids = IdAssignment::sequential(3);
        let plan = FaultPlan::new(0).with_crash_at(0, 0);
        let run = Executor::local(&g, &ids)
            .run_with_faults(flood_protocols(&g, &[0], 10), 11, &plan)
            .unwrap();
        // The source crashed before its start-round broadcast: nothing floods.
        assert_eq!(run.meter.messages, 0);
        assert!(run.outcomes[0].is_crashed());
        assert_eq!(run.outcomes[1], NodeOutcome::Halted(None));
    }

    #[test]
    fn dropped_messages_are_counted_not_delivered() {
        let g = Graph::path(2);
        let ids = IdAssignment::sequential(2);
        // Drop everything: the flood from node 0 never reaches node 1.
        let plan = FaultPlan::new(9).with_drop(10_000);
        let run = Executor::local(&g, &ids)
            .run_with_faults(flood_protocols(&g, &[0], 6), 7, &plan)
            .unwrap();
        assert_eq!(run.meter.messages, 0);
        assert!(run.meter.dropped > 0);
        assert_eq!(run.outcomes[1], NodeOutcome::Halted(None));
    }

    #[test]
    fn delayed_message_arrives_later() {
        let g = Graph::path(2);
        let ids = IdAssignment::sequential(2);
        // Delay everything by exactly 1 extra round: distances still
        // propagate, one round later.
        let plan = FaultPlan::new(4).with_delay(10_000, 1);
        let run = Executor::local(&g, &ids)
            .run_with_faults(flood_protocols(&g, &[0], 8), 9, &plan)
            .unwrap();
        assert_eq!(run.outcomes[1], NodeOutcome::Halted(Some(1)));
        assert!(run.meter.delayed > 0);
    }

    #[test]
    fn faulty_parallel_matches_sequential_across_thread_counts() {
        let g = Graph::grid(7, 9);
        let ids = IdAssignment::sequential(g.node_count());
        let plan = FaultPlan::new(42)
            .with_drop(1_500)
            .with_duplication(1_000)
            .with_delay(2_000, 3)
            .with_crashes(800, 3);
        let seq = Executor::congest(&g, &ids)
            .run_with_faults(flood_protocols(&g, &[0, 31], 30), 31, &plan)
            .unwrap();
        for threads in [2, 3, 8, 64] {
            let par = Executor::congest(&g, &ids)
                .run_parallel_with_faults(flood_protocols(&g, &[0, 31], 30), 31, threads, &plan)
                .unwrap();
            assert_eq!(par.meter, seq.meter, "threads={threads}");
            assert_eq!(par.outcomes, seq.outcomes, "threads={threads}");
        }
        // The schedule actually exercised each fault class.
        assert!(seq.meter.dropped > 0 && seq.meter.duplicated > 0 && seq.meter.delayed > 0);
    }
}
