//! Synchronous LOCAL/CONGEST simulator and SLOCAL runtime.
//!
//! The paper's model (its §2): an `n`-node network, one processor per node,
//! unique `Θ(log n)`-bit identifiers, synchronous rounds; per round each node
//! sends one message to each neighbor. In LOCAL messages are unbounded; in
//! CONGEST they are `O(log n)` bits.
//!
//! - [`executor`]: the arena-backed batched round executor — every directed
//!   edge owns a fixed slot in a flat message arena laid out by the graph's
//!   CSR edge index; delivery is a single metering pass that flips the
//!   read/write arenas (zero per-round allocation), and node steps can be
//!   chunked across threads with bit-identical results.
//! - [`engine`]: the message-passing engine (an adapter over the executor).
//!   Algorithms are per-node state machines ([`node::Protocol`]); the engine
//!   delivers inboxes round by round and meters rounds, messages, bits per
//!   message (flagging CONGEST violations) and random bits drawn.
//! - [`faults`]: seeded deterministic fault schedules ([`faults::FaultPlan`]:
//!   message drop/duplication/reordering/bounded-delay and crash-stop node
//!   failures) injected at the executor's delivery boundary by
//!   [`executor::Executor::run_with_faults`].
//! - [`node`]: the protocol trait and node-side context.
//! - [`wire`]: message bit-size accounting ([`wire::WireSize`]).
//! - [`cost`]: the [`cost::CostMeter`] accumulator and sequential
//!   composition.
//! - [`slocal`]: the sequential-local model of [GKM17] — process nodes in an
//!   order, each reading only its radius-`r` ball — with locality accounting.
//!
//! # Example
//!
//! A one-round protocol in which every node learns its neighbors' ids:
//!
//! ```
//! use locality_graph::prelude::*;
//! use locality_sim::prelude::*;
//!
//! struct Hello { heard: Vec<u64> }
//! impl Protocol for Hello {
//!     type Message = u64;
//!     type Output = usize;
//!     fn start(&mut self, ctx: &NodeContext) -> Outbox<u64> {
//!         Outbox::broadcast(ctx.id)
//!     }
//!     fn round(&mut self, _ctx: &NodeContext, _r: u32, inbox: &[(usize, u64)])
//!         -> Step<u64, usize>
//!     {
//!         self.heard = inbox.iter().map(|&(_, id)| id).collect();
//!         Step::Halt(self.heard.len())
//!     }
//! }
//!
//! let g = Graph::cycle(5);
//! let ids = IdAssignment::sequential(5);
//! let mut engine = Engine::congest(&g, &ids);
//! let run = engine.run((0..5).map(|_| Hello { heard: vec![] }), 10).unwrap();
//! assert!(run.outputs.iter().all(|&d| d == 2));
//! assert_eq!(run.meter.rounds, 1);
//! ```

// Bracketed citation keys ([EN16], [GKM17], ...) are bibliography
// references, not intra-doc links.
#![allow(rustdoc::broken_intra_doc_links)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod executor;
pub mod faults;
pub mod node;
pub mod protocols;
pub mod slocal;
pub mod wire;

pub use cost::CostMeter;
pub use engine::{Engine, EngineError, Mode, Run};
pub use executor::{BatchProtocol, Control, Executor, Inbox, Outlet};
pub use faults::{FaultPlan, FaultRun, NodeOutcome};
pub use node::{NodeContext, Outbox, Protocol, Step};
pub use wire::WireSize;

/// The most used items.
pub mod prelude {
    pub use crate::cost::CostMeter;
    pub use crate::engine::{Engine, EngineError, Mode, Run};
    pub use crate::executor::{BatchProtocol, Control, Executor, Inbox, Outlet};
    pub use crate::faults::{Delivery, FaultPlan, FaultRun, MessageFate, NodeOutcome};
    pub use crate::node::{NodeContext, Outbox, Protocol, Step};
    pub use crate::slocal::{BallView, SlocalRunner, SlocalScratch, SlocalStats};
    pub use crate::wire::WireSize;
}
