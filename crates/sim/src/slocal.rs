//! The SLOCAL model of Ghaffari, Kuhn & Maus [GKM17].
//!
//! An SLOCAL algorithm processes the nodes in an arbitrary order
//! `v1, v2, …, vn`; when processing `vi` it reads the *current* state (graph
//! topology plus previously written outputs) within a radius-`r` ball around
//! `vi`, then writes `vi`'s output. The parameter `r` is the algorithm's
//! *locality*. Greedy MIS and (∆+1)-coloring have locality 1; the paper's
//! derandomization results ride on the equivalence
//! `P-RLOCAL = P-SLOCAL` [GHK18].
//!
//! [`SlocalRunner`] enforces the model mechanically: the per-node closure
//! receives a [`BallView`] that only exposes nodes within the declared
//! locality, and the runner records the maximal locality actually used.
//!
//! A step costs `O(|ball|)`, not `O(n)`: the runner BFSes into a reusable
//! [`SlocalScratch`] whose epoch-stamped distance array answers
//! [`BallView::distance`] in `O(1)` and is invalidated by bumping the epoch —
//! no per-step allocation, no per-step clearing (the pattern that lets the
//! decomposition consumers run at `10⁶` nodes). [`SlocalRunner::process_span`]
//! is the bulk entry point for the [GKM17] reduction: it executes one
//! cluster's members against a frozen output snapshot, staging the new
//! outputs in an overlay — same-color clusters have disjoint read balls, so
//! spans can run in any order (or on different threads) and merge after.

use locality_graph::Graph;
use std::collections::VecDeque;

/// Statistics of an SLOCAL execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlocalStats {
    /// Declared locality radius.
    pub locality: u32,
    /// Largest ball (node count) any step read.
    pub max_ball_size: usize,
    /// Number of processed nodes.
    pub steps: usize,
}

/// Reusable working memory for SLOCAL steps: an epoch-stamped distance
/// array (bumping the epoch invalidates every entry in `O(1)`), the BFS
/// queue, and the current ball as packed `(node, dist)` pairs in BFS order.
#[derive(Debug, Clone)]
pub struct SlocalScratch {
    stamp: Vec<u64>,
    dist: Vec<u32>,
    epoch: u64,
    queue: VecDeque<u32>,
    ball: Vec<(u32, u32)>,
}

impl SlocalScratch {
    /// Scratch for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            stamp: vec![0; n],
            dist: vec![0; n],
            epoch: 0,
            queue: VecDeque::new(),
            ball: Vec::new(),
        }
    }

    /// Number of nodes this scratch is sized for.
    pub fn node_count(&self) -> usize {
        self.stamp.len()
    }

    /// BFS the radius-`r` ball around `v`, stamping distances for the
    /// current epoch and recording the ball in BFS order.
    fn fill_ball(&mut self, g: &Graph, v: usize, r: u32) {
        self.epoch += 1;
        self.ball.clear();
        self.queue.clear();
        self.stamp[v] = self.epoch;
        self.dist[v] = 0;
        self.ball.push((v as u32, 0));
        self.queue.push_back(v as u32);
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u as usize];
            if du >= r {
                continue;
            }
            for &w in g.neighbors(u as usize) {
                if self.stamp[w] != self.epoch {
                    self.stamp[w] = self.epoch;
                    self.dist[w] = du + 1;
                    self.ball.push((w as u32, du + 1));
                    self.queue.push_back(w as u32);
                }
            }
        }
    }
}

/// Read-only view of the radius-`r` ball around the node being processed.
#[derive(Debug)]
pub struct BallView<'a, T> {
    graph: &'a Graph,
    center: usize,
    stamp: &'a [u64],
    dist: &'a [u32],
    epoch: u64,
    ball: &'a [(u32, u32)],
    outputs: &'a [Option<T>],
    /// Outputs written by the current span but not yet merged into
    /// `outputs`, sorted by node (members are processed in ascending order).
    overlay: &'a [(u32, T)],
}

impl<'a, T> BallView<'a, T> {
    /// The node being processed.
    pub fn center(&self) -> usize {
        self.center
    }

    /// Distance from the center, if within the locality radius.
    pub fn distance(&self, v: usize) -> Option<u32> {
        if v < self.stamp.len() && self.stamp[v] == self.epoch {
            Some(self.dist[v])
        } else {
            None
        }
    }

    /// Whether `v` is visible (within the ball).
    pub fn contains(&self, v: usize) -> bool {
        self.distance(v).is_some()
    }

    /// Number of nodes in the ball.
    pub fn ball_size(&self) -> usize {
        self.ball.len()
    }

    /// The ball as `(node, dist)` pairs in BFS order, without allocating.
    pub fn ball_nodes(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.ball.iter().map(|&(v, d)| (v as usize, d))
    }

    /// The nodes of the ball in (distance, index) order.
    pub fn nodes(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = self.ball.iter().map(|&(v, _)| v as usize).collect();
        nodes.sort_by_key(|&v| (self.dist[v], v));
        nodes
    }

    /// Neighbors of a visible node `v` that are themselves visible, in
    /// ascending index order, without allocating.
    ///
    /// # Panics
    /// Panics if `v` is outside the ball (reading it would violate SLOCAL).
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(self.contains(v), "SLOCAL violation: node {v} outside ball");
        self.graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| self.contains(u))
    }

    /// The already-written output of a visible node, if any.
    ///
    /// # Panics
    /// Panics if `v` is outside the ball.
    pub fn output(&self, v: usize) -> Option<&T> {
        assert!(self.contains(v), "SLOCAL violation: node {v} outside ball");
        if let Ok(i) = self.overlay.binary_search_by_key(&(v as u32), |&(u, _)| u) {
            return Some(&self.overlay[i].1);
        }
        self.outputs[v].as_ref()
    }
}

/// Executes SLOCAL algorithms on a graph with locality enforcement.
///
/// # Example
///
/// Greedy (∆+1)-coloring has locality 1:
///
/// ```
/// use locality_graph::prelude::*;
/// use locality_sim::slocal::SlocalRunner;
///
/// let g = Graph::cycle(5);
/// let order: Vec<usize> = (0..5).collect();
/// let (colors, stats) = SlocalRunner::new(&g, 1).run(&order, |view| {
///     let used: Vec<usize> = view
///         .neighbors(view.center())
///         .filter_map(|u| view.output(u).copied())
///         .collect();
///     (0..).find(|c| !used.contains(c)).expect("some color is free")
/// });
/// assert_eq!(stats.locality, 1);
/// for (u, v) in g.edges() {
///     assert_ne!(colors[u], colors[v]);
/// }
/// ```
#[derive(Debug)]
pub struct SlocalRunner<'a> {
    graph: &'a Graph,
    locality: u32,
}

impl<'a> SlocalRunner<'a> {
    /// Create a runner with the declared locality radius.
    pub fn new(graph: &'a Graph, locality: u32) -> Self {
        Self { graph, locality }
    }

    /// Process every node of `order` once, in order, writing its output.
    /// One [`SlocalScratch`] is reused across all steps, so the per-step
    /// cost is `O(|ball|)` with zero allocation inside the loop.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of the nodes.
    pub fn run<T, F>(&self, order: &[usize], step: F) -> (Vec<T>, SlocalStats)
    where
        F: FnMut(&BallView<'_, T>) -> T,
    {
        let mut scratch = SlocalScratch::new(self.graph.node_count());
        self.run_with(&mut scratch, order, step)
    }

    /// [`SlocalRunner::run`] over a caller-owned [`SlocalScratch`]: a serving
    /// layer that pins one graph and replays many SLOCAL executions reuses a
    /// single scratch arena instead of allocating one per run. Outputs are
    /// identical to [`SlocalRunner::run`] — the scratch is epoch-stamped, so
    /// stale state from previous runs is invisible.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of the nodes or the scratch was
    /// built for a different node count.
    pub fn run_with<T, F>(
        &self,
        scratch: &mut SlocalScratch,
        order: &[usize],
        mut step: F,
    ) -> (Vec<T>, SlocalStats)
    where
        F: FnMut(&BallView<'_, T>) -> T,
    {
        let n = self.graph.node_count();
        assert_eq!(order.len(), n, "order must cover all nodes");
        assert_eq!(
            scratch.node_count(),
            n,
            "scratch sized for a different graph"
        );
        let mut seen = vec![false; n];
        for &v in order {
            assert!(v < n && !seen[v], "order must be a permutation");
            seen[v] = true;
        }

        let mut outputs: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut stats = SlocalStats {
            locality: self.locality,
            max_ball_size: 0,
            steps: 0,
        };
        for &v in order {
            scratch.fill_ball(self.graph, v, self.locality);
            stats.max_ball_size = stats.max_ball_size.max(scratch.ball.len());
            stats.steps += 1;
            let view = BallView {
                graph: self.graph,
                center: v,
                stamp: &scratch.stamp,
                dist: &scratch.dist,
                epoch: scratch.epoch,
                ball: &scratch.ball,
                outputs: &outputs,
                overlay: &[],
            };
            let out = step(&view);
            outputs[v] = Some(out);
        }
        let outputs = outputs
            .into_iter()
            .map(|o| o.expect("every node processed")) // audit: allow(panic) -- invariant established by construction; violation is a logic bug, not an input condition
            .collect();
        (outputs, stats)
    }

    /// Bulk entry point for the [GKM17] reduction: process `members` (one
    /// cluster, ascending node order) against the frozen snapshot `outputs`,
    /// appending each new output to `staged` instead of writing it back.
    /// Later members of the span see earlier ones through the overlay; the
    /// snapshot is never mutated, so spans whose read balls are disjoint —
    /// same-color clusters of a `G^{2r+1}` decomposition — can execute in any
    /// order, or on different threads each with its own scratch, and merge
    /// their staged outputs afterwards.
    ///
    /// Returns the largest ball size any step read.
    ///
    /// # Panics
    /// Panics if `members` is not strictly ascending or a member is out of
    /// range, or if the scratch was built for a different node count.
    pub fn process_span<T, F>(
        &self,
        scratch: &mut SlocalScratch,
        outputs: &[Option<T>],
        staged: &mut Vec<(u32, T)>,
        members: &[usize],
        mut step: F,
    ) -> usize
    where
        F: FnMut(&BallView<'_, T>) -> T,
    {
        let n = self.graph.node_count();
        assert_eq!(
            scratch.node_count(),
            n,
            "scratch sized for a different graph"
        );
        assert_eq!(outputs.len(), n, "outputs must cover all nodes");
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "span members must be strictly ascending"
        );
        let staged_base = staged.len();
        let mut max_ball = 0usize;
        for &v in members {
            assert!(v < n, "span member out of range");
            scratch.fill_ball(self.graph, v, self.locality);
            max_ball = max_ball.max(scratch.ball.len());
            let view = BallView {
                graph: self.graph,
                center: v,
                stamp: &scratch.stamp,
                dist: &scratch.dist,
                epoch: scratch.epoch,
                ball: &scratch.ball,
                outputs,
                overlay: &staged[staged_base..],
            };
            let out = step(&view);
            staged.push((v as u32, out));
        }
        max_ball
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_graph::Graph;

    fn greedy_mis(g: &Graph, order: &[usize]) -> Vec<bool> {
        let (out, stats) = SlocalRunner::new(g, 1).run(order, |view| {
            // Join the MIS iff no already-processed neighbor joined.
            !view
                .neighbors(view.center())
                .any(|u| view.output(u).copied().unwrap_or(false))
        });
        assert_eq!(stats.locality, 1);
        out
    }

    #[test]
    fn greedy_mis_is_maximal_independent() {
        let g = Graph::grid(5, 5);
        let order: Vec<usize> = (0..25).collect();
        let mis = greedy_mis(&g, &order);
        for (u, v) in g.edges() {
            assert!(!(mis[u] && mis[v]), "edge ({u},{v}) inside MIS");
        }
        for v in g.nodes() {
            let dominated = mis[v] || g.neighbors(v).iter().any(|&u| mis[u]);
            assert!(dominated, "node {v} not dominated");
        }
    }

    #[test]
    fn order_affects_output_but_not_validity() {
        let g = Graph::path(6);
        let forward: Vec<usize> = (0..6).collect();
        let backward: Vec<usize> = (0..6).rev().collect();
        let a = greedy_mis(&g, &forward);
        let b = greedy_mis(&g, &backward);
        // Both valid (spot-check independence).
        for (u, v) in g.edges() {
            assert!(!(a[u] && a[v]));
            assert!(!(b[u] && b[v]));
        }
        assert!(a[0] && !a[1]);
        assert!(b[5] && !b[4]);
    }

    #[test]
    fn ball_view_enforces_radius() {
        let g = Graph::path(10);
        let runner = SlocalRunner::new(&g, 2);
        let order: Vec<usize> = (0..10).collect();
        let (_, stats) = runner.run(&order, |view: &BallView<'_, u32>| {
            // Center 0 must not see node 3 (distance 3 > 2).
            if view.center() == 0 {
                assert!(view.contains(2));
                assert!(!view.contains(3));
            }
            0u32
        });
        assert!(stats.max_ball_size <= 5);
        assert_eq!(stats.steps, 10);
    }

    #[test]
    #[should_panic]
    fn reading_outside_ball_panics() {
        let g = Graph::path(5);
        let runner = SlocalRunner::new(&g, 1);
        let order: Vec<usize> = (0..5).collect();
        let _ = runner.run(&order, |view: &BallView<'_, u32>| {
            if view.center() == 0 {
                let _ = view.output(4); // distance 4 > locality 1
            }
            0u32
        });
    }

    #[test]
    #[should_panic]
    fn non_permutation_order_panics() {
        let g = Graph::path(3);
        let _ = SlocalRunner::new(&g, 1).run(&[0, 0, 1], |_view: &BallView<'_, u8>| 0u8);
    }

    #[test]
    fn nodes_listing_sorted_by_distance() {
        let g = Graph::star(5);
        let runner = SlocalRunner::new(&g, 1);
        let order = vec![0, 1, 2, 3, 4];
        let (_, _) = runner.run(&order, |view: &BallView<'_, u8>| {
            if view.center() == 0 {
                assert_eq!(view.nodes(), vec![0, 1, 2, 3, 4]);
                assert_eq!(view.ball_size(), 5);
                assert_eq!(view.ball_nodes().next(), Some((0, 0)));
            }
            0u8
        });
    }

    #[test]
    fn distance_out_of_range_is_none() {
        let g = Graph::path(3);
        let runner = SlocalRunner::new(&g, 1);
        let order = vec![0, 1, 2];
        let (_, _) = runner.run(&order, |view: &BallView<'_, u8>| {
            assert_eq!(view.distance(99), None);
            assert!(!view.contains(99));
            0u8
        });
    }

    #[test]
    fn span_overlay_matches_sequential_run() {
        // Greedy MIS over a path, processed as two spans whose members
        // interleave with the frozen snapshot: the staged outputs must give
        // the same result as the plain sequential run over the same order.
        let g = Graph::path(8);
        let order: Vec<usize> = (0..8).collect();
        let expected = greedy_mis(&g, &order);

        let runner = SlocalRunner::new(&g, 1);
        let mut scratch = SlocalScratch::new(8);
        let mut outputs: Vec<Option<bool>> = vec![None; 8];
        let step = |view: &BallView<'_, bool>| {
            !view
                .neighbors(view.center())
                .any(|u| view.output(u).copied().unwrap_or(false))
        };
        for span in [&[0usize, 1, 2, 3][..], &[4, 5, 6, 7][..]] {
            let mut staged = Vec::new();
            let max_ball = runner.process_span(&mut scratch, &outputs, &mut staged, span, step);
            assert!(max_ball <= 3);
            for (v, out) in staged {
                outputs[v as usize] = Some(out);
            }
        }
        let got: Vec<bool> = outputs.into_iter().map(|o| o.unwrap()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic]
    fn span_rejects_unsorted_members() {
        let g = Graph::path(4);
        let runner = SlocalRunner::new(&g, 1);
        let mut scratch = SlocalScratch::new(4);
        let outputs: Vec<Option<u8>> = vec![None; 4];
        let mut staged = Vec::new();
        let _ = runner.process_span(&mut scratch, &outputs, &mut staged, &[2, 1], |_| 0u8);
    }
}
