//! The SLOCAL model of Ghaffari, Kuhn & Maus [GKM17].
//!
//! An SLOCAL algorithm processes the nodes in an arbitrary order
//! `v1, v2, …, vn`; when processing `vi` it reads the *current* state (graph
//! topology plus previously written outputs) within a radius-`r` ball around
//! `vi`, then writes `vi`'s output. The parameter `r` is the algorithm's
//! *locality*. Greedy MIS and (∆+1)-coloring have locality 1; the paper's
//! derandomization results ride on the equivalence
//! `P-RLOCAL = P-SLOCAL` [GHK18].
//!
//! [`SlocalRunner`] enforces the model mechanically: the per-node closure
//! receives a [`BallView`] that only exposes nodes within the declared
//! locality, and the runner records the maximal locality actually used.

use locality_graph::traversal::bounded_bfs_distances;
use locality_graph::Graph;

/// Statistics of an SLOCAL execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlocalStats {
    /// Declared locality radius.
    pub locality: u32,
    /// Largest ball (node count) any step read.
    pub max_ball_size: usize,
    /// Number of processed nodes.
    pub steps: usize,
}

/// Read-only view of the radius-`r` ball around the node being processed.
#[derive(Debug)]
pub struct BallView<'a, T> {
    graph: &'a Graph,
    center: usize,
    dist: Vec<Option<u32>>,
    outputs: &'a [Option<T>],
}

impl<'a, T> BallView<'a, T> {
    /// The node being processed.
    pub fn center(&self) -> usize {
        self.center
    }

    /// Distance from the center, if within the locality radius.
    pub fn distance(&self, v: usize) -> Option<u32> {
        self.dist.get(v).copied().flatten()
    }

    /// Whether `v` is visible (within the ball).
    pub fn contains(&self, v: usize) -> bool {
        self.distance(v).is_some()
    }

    /// The nodes of the ball in (distance, index) order.
    pub fn nodes(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = (0..self.dist.len())
            .filter(|&v| self.dist[v].is_some())
            .collect();
        nodes.sort_by_key(|&v| (self.dist[v], v));
        nodes
    }

    /// Neighbors of a visible node `v` that are themselves visible.
    ///
    /// # Panics
    /// Panics if `v` is outside the ball (reading it would violate SLOCAL).
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        assert!(self.contains(v), "SLOCAL violation: node {v} outside ball");
        self.graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| self.contains(u))
            .collect()
    }

    /// The already-written output of a visible node, if any.
    ///
    /// # Panics
    /// Panics if `v` is outside the ball.
    pub fn output(&self, v: usize) -> Option<&T> {
        assert!(self.contains(v), "SLOCAL violation: node {v} outside ball");
        self.outputs[v].as_ref()
    }
}

/// Executes SLOCAL algorithms on a graph with locality enforcement.
///
/// # Example
///
/// Greedy (∆+1)-coloring has locality 1:
///
/// ```
/// use locality_graph::prelude::*;
/// use locality_sim::slocal::SlocalRunner;
///
/// let g = Graph::cycle(5);
/// let order: Vec<usize> = (0..5).collect();
/// let (colors, stats) = SlocalRunner::new(&g, 1).run(&order, |view| {
///     let used: Vec<usize> = view
///         .neighbors(view.center())
///         .into_iter()
///         .filter_map(|u| view.output(u).copied())
///         .collect();
///     (0..).find(|c| !used.contains(c)).expect("some color is free")
/// });
/// assert_eq!(stats.locality, 1);
/// for (u, v) in g.edges() {
///     assert_ne!(colors[u], colors[v]);
/// }
/// ```
#[derive(Debug)]
pub struct SlocalRunner<'a> {
    graph: &'a Graph,
    locality: u32,
}

impl<'a> SlocalRunner<'a> {
    /// Create a runner with the declared locality radius.
    pub fn new(graph: &'a Graph, locality: u32) -> Self {
        Self { graph, locality }
    }

    /// Process every node of `order` once, in order, writing its output.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of the nodes.
    pub fn run<T, F>(&self, order: &[usize], mut step: F) -> (Vec<T>, SlocalStats)
    where
        F: FnMut(&BallView<'_, T>) -> T,
    {
        let n = self.graph.node_count();
        assert_eq!(order.len(), n, "order must cover all nodes");
        let mut seen = vec![false; n];
        for &v in order {
            assert!(v < n && !seen[v], "order must be a permutation");
            seen[v] = true;
        }

        let mut outputs: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut stats = SlocalStats {
            locality: self.locality,
            max_ball_size: 0,
            steps: 0,
        };
        for &v in order {
            let dist = bounded_bfs_distances(self.graph, v, self.locality);
            let ball_size = dist.iter().flatten().count();
            stats.max_ball_size = stats.max_ball_size.max(ball_size);
            stats.steps += 1;
            let view = BallView {
                graph: self.graph,
                center: v,
                dist,
                outputs: &outputs,
            };
            let out = step(&view);
            outputs[v] = Some(out);
        }
        let outputs = outputs
            .into_iter()
            .map(|o| o.expect("every node processed"))
            .collect();
        (outputs, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_graph::Graph;

    fn greedy_mis(g: &Graph, order: &[usize]) -> Vec<bool> {
        let (out, stats) = SlocalRunner::new(g, 1).run(order, |view| {
            // Join the MIS iff no already-processed neighbor joined.
            !view
                .neighbors(view.center())
                .into_iter()
                .any(|u| view.output(u).copied().unwrap_or(false))
        });
        assert_eq!(stats.locality, 1);
        out
    }

    #[test]
    fn greedy_mis_is_maximal_independent() {
        let g = Graph::grid(5, 5);
        let order: Vec<usize> = (0..25).collect();
        let mis = greedy_mis(&g, &order);
        for (u, v) in g.edges() {
            assert!(!(mis[u] && mis[v]), "edge ({u},{v}) inside MIS");
        }
        for v in g.nodes() {
            let dominated = mis[v] || g.neighbors(v).iter().any(|&u| mis[u]);
            assert!(dominated, "node {v} not dominated");
        }
    }

    #[test]
    fn order_affects_output_but_not_validity() {
        let g = Graph::path(6);
        let forward: Vec<usize> = (0..6).collect();
        let backward: Vec<usize> = (0..6).rev().collect();
        let a = greedy_mis(&g, &forward);
        let b = greedy_mis(&g, &backward);
        // Both valid (spot-check independence).
        for (u, v) in g.edges() {
            assert!(!(a[u] && a[v]));
            assert!(!(b[u] && b[v]));
        }
        assert!(a[0] && !a[1]);
        assert!(b[5] && !b[4]);
    }

    #[test]
    fn ball_view_enforces_radius() {
        let g = Graph::path(10);
        let runner = SlocalRunner::new(&g, 2);
        let order: Vec<usize> = (0..10).collect();
        let (_, stats) = runner.run(&order, |view: &BallView<'_, u32>| {
            // Center 0 must not see node 3 (distance 3 > 2).
            if view.center() == 0 {
                assert!(view.contains(2));
                assert!(!view.contains(3));
            }
            0u32
        });
        assert!(stats.max_ball_size <= 5);
        assert_eq!(stats.steps, 10);
    }

    #[test]
    #[should_panic]
    fn reading_outside_ball_panics() {
        let g = Graph::path(5);
        let runner = SlocalRunner::new(&g, 1);
        let order: Vec<usize> = (0..5).collect();
        let _ = runner.run(&order, |view: &BallView<'_, u32>| {
            if view.center() == 0 {
                let _ = view.output(4); // distance 4 > locality 1
            }
            0u32
        });
    }

    #[test]
    #[should_panic]
    fn non_permutation_order_panics() {
        let g = Graph::path(3);
        let _ = SlocalRunner::new(&g, 1).run(&[0, 0, 1], |_view: &BallView<'_, u8>| 0u8);
    }

    #[test]
    fn nodes_listing_sorted_by_distance() {
        let g = Graph::star(5);
        let runner = SlocalRunner::new(&g, 1);
        let order = vec![0, 1, 2, 3, 4];
        let (_, _) = runner.run(&order, |view: &BallView<'_, u8>| {
            if view.center() == 0 {
                assert_eq!(view.nodes(), vec![0, 1, 2, 3, 4]);
            }
            0u8
        });
    }
}
