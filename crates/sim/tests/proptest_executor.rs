//! Property test: the parallel arena executor is bit-identical to the
//! sequential one — same outputs, same [`CostMeter`] — over random `G(n, p)`
//! graphs and randomly scripted protocols, for every thread count.
//!
//! The scripted protocol is adversarial for determinism bugs: each node
//! follows its own pseudo-random schedule of silences, broadcasts, directed
//! sends (including overrides) and halts, and folds its entire message
//! history (port and payload) into an order-sensitive checksum, so a single
//! misrouted, duplicated, stale or dropped message changes some node's
//! output.

use locality_graph::prelude::*;
use locality_rand::prng::{Prng, SplitMix64};
use locality_sim::prelude::*;
use proptest::prelude::*;

/// Deterministic pseudo-random per-node protocol driven by its own PRNG.
#[derive(Debug, Clone)]
struct Script {
    rng: SplitMix64,
    halt_round: u32,
    checksum: u64,
}

impl Script {
    fn new(seed: u64, node: usize) -> Self {
        let mut rng = SplitMix64::new(seed ^ (node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let halt_round = 1 + (rng.next_u64() % 12) as u32;
        Self {
            rng,
            halt_round,
            checksum: 0,
        }
    }

    fn absorb(&mut self, port: usize, msg: u64) {
        self.checksum = self
            .checksum
            .rotate_left(7)
            .wrapping_add(msg)
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(port as u64 + 1);
    }

    fn act(&mut self, out: &mut Outlet<'_, u64>) {
        let degree = out.degree();
        match self.rng.next_u64() % 4 {
            0 => {} // silent round
            1 => out.broadcast(self.rng.next_u64() >> 32),
            2 if degree > 0 => {
                let port = (self.rng.next_u64() % degree as u64) as usize;
                out.send(port, self.rng.next_u64() >> 32);
            }
            _ if degree > 0 => {
                // A broadcast partially overridden by directed sends.
                out.broadcast(self.rng.next_u64() >> 32);
                for _ in 0..(self.rng.next_u64() % 3) {
                    let port = (self.rng.next_u64() % degree as u64) as usize;
                    out.send(port, self.rng.next_u64() >> 32);
                }
            }
            _ => {}
        }
    }
}

impl BatchProtocol for Script {
    type Message = u64;
    type Output = (u32, u64);

    fn start(&mut self, _ctx: &NodeContext, out: &mut Outlet<'_, u64>) {
        self.act(out);
    }

    fn round(
        &mut self,
        _ctx: &NodeContext,
        round: u32,
        inbox: &Inbox<'_, u64>,
        out: &mut Outlet<'_, u64>,
    ) -> Control<(u32, u64)> {
        for (port, &msg) in inbox.iter() {
            self.absorb(port, msg);
        }
        if round >= self.halt_round {
            return Control::Halt((round, self.checksum));
        }
        self.act(out);
        Control::Continue
    }
}

fn arb_gnp() -> impl Strategy<Value = Graph> {
    (1usize..40, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = SplitMix64::new(seed);
        // Sparse-to-dense sweep: p in roughly [0.02, 0.5].
        let p = 0.02 + (rng.next_u64() % 49) as f64 / 100.0;
        Graph::gnp(n, p, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_executor_is_bit_identical_to_sequential(
        g in arb_gnp(),
        proto_seed in any::<u64>(),
        local in any::<bool>(),
    ) {
        let n = g.node_count();
        let ids = IdAssignment::sequential(n);
        fn make<'g>(local: bool, g: &'g Graph, ids: &'g IdAssignment) -> Executor<'g> {
            if local {
                Executor::local(g, ids)
            } else {
                Executor::congest(g, ids)
            }
        }
        let protocols = |seed: u64| (0..n).map(move |v| Script::new(seed, v));

        let seq = make(local, &g, &ids)
            .run(protocols(proto_seed), 16)
            .expect("scripts halt by round 13");
        for threads in [2usize, 3, 5, 16] {
            let par = make(local, &g, &ids)
                .run_parallel(protocols(proto_seed), 16, threads)
                .expect("scripts halt by round 13");
            prop_assert_eq!(&par.outputs, &seq.outputs, "threads={}", threads);
            prop_assert_eq!(par.meter, seq.meter, "threads={}", threads);
            prop_assert_eq!(par.budget_bits, seq.budget_bits);
        }
    }

    #[test]
    fn legacy_engine_agrees_with_batched_flood(
        g in arb_gnp(),
        source_pick in any::<u64>(),
    ) {
        // The legacy `Protocol` adapter and a native `BatchProtocol` version
        // of BFS flooding must meter identically (same engine underneath).
        let n = g.node_count();
        let source = (source_pick % n as u64) as usize;
        let ids = IdAssignment::sequential(n);
        let deadline = 2 * n as u32 + 2;

        struct LegacyFlood { is_source: bool, dist: Option<u32>, deadline: u32 }
        impl Protocol for LegacyFlood {
            type Message = u32;
            type Output = Option<u32>;
            fn start(&mut self, _ctx: &NodeContext) -> Outbox<u32> {
                if self.is_source { self.dist = Some(0); Outbox::broadcast(0) } else { Outbox::silent() }
            }
            fn round(&mut self, _ctx: &NodeContext, round: u32, inbox: &[(usize, u32)])
                -> Step<u32, Option<u32>>
            {
                if round >= self.deadline { return Step::Halt(self.dist); }
                if self.dist.is_none() {
                    if let Some(d) = inbox.iter().map(|&(_, d)| d + 1).min() {
                        self.dist = Some(d);
                        return Step::Continue(Outbox::broadcast(d));
                    }
                }
                Step::Continue(Outbox::silent())
            }
        }

        #[derive(Clone)]
        struct BatchedFlood { is_source: bool, dist: Option<u32>, deadline: u32 }
        impl BatchProtocol for BatchedFlood {
            type Message = u32;
            type Output = Option<u32>;
            fn start(&mut self, _ctx: &NodeContext, out: &mut Outlet<'_, u32>) {
                if self.is_source { self.dist = Some(0); out.broadcast(0); }
            }
            fn round(&mut self, _ctx: &NodeContext, round: u32, inbox: &Inbox<'_, u32>, out: &mut Outlet<'_, u32>)
                -> Control<Option<u32>>
            {
                if round >= self.deadline { return Control::Halt(self.dist); }
                if self.dist.is_none() {
                    if let Some(d) = inbox.iter().map(|(_, &d)| d + 1).min() {
                        self.dist = Some(d);
                        out.broadcast(d);
                    }
                }
                Control::Continue
            }
        }

        let legacy = Engine::congest(&g, &ids)
            .run(
                (0..n).map(|v| LegacyFlood { is_source: v == source, dist: None, deadline }),
                deadline + 1,
            )
            .expect("completes");
        let batched = Executor::congest(&g, &ids)
            .run(
                (0..n).map(|v| BatchedFlood { is_source: v == source, dist: None, deadline }),
                deadline + 1,
            )
            .expect("completes");
        prop_assert_eq!(&legacy.outputs, &batched.outputs);
        prop_assert_eq!(legacy.meter, batched.meter);

        let reference = bfs_distances(&g, source);
        for v in g.nodes() {
            prop_assert_eq!(legacy.outputs[v], reference[v], "node {}", v);
        }
    }
}
