//! Property tests for deterministic fault injection (ISSUE 8):
//!
//! 1. a rate-0 [`FaultPlan`] is byte-for-byte the fault-free executor
//!    (same outputs, same meter, same budget), and
//! 2. a faulty execution is a pure function of `(protocols, plan)` — the
//!    same seed yields bit-identical outcomes and meters across repeated
//!    runs and every thread count.
//!
//! The scripted protocol folds its entire message history into an
//! order-sensitive checksum (as in `proptest_executor.rs`), so a single
//! extra, missing, stale or misrouted delivery changes some node's output;
//! it halts on a fixed round schedule, never on message receipt, so runs
//! terminate under arbitrary drop rates.

use locality_graph::prelude::*;
use locality_rand::prng::{Prng, SplitMix64};
use locality_sim::prelude::*;
use proptest::prelude::*;

/// Deterministic pseudo-random per-node protocol driven by its own PRNG.
#[derive(Debug, Clone)]
struct Script {
    rng: SplitMix64,
    halt_round: u32,
    checksum: u64,
}

impl Script {
    fn new(seed: u64, node: usize) -> Self {
        let mut rng = SplitMix64::new(seed ^ (node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let halt_round = 1 + (rng.next_u64() % 12) as u32;
        Self {
            rng,
            halt_round,
            checksum: 0,
        }
    }

    fn absorb(&mut self, port: usize, msg: u64) {
        self.checksum = self
            .checksum
            .rotate_left(7)
            .wrapping_add(msg)
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(port as u64 + 1);
    }

    fn act(&mut self, out: &mut Outlet<'_, u64>) {
        let degree = out.degree();
        match self.rng.next_u64() % 4 {
            0 => {} // silent round
            1 => out.broadcast(self.rng.next_u64() >> 32),
            2 if degree > 0 => {
                let port = (self.rng.next_u64() % degree as u64) as usize;
                out.send(port, self.rng.next_u64() >> 32);
            }
            _ => {}
        }
    }
}

impl BatchProtocol for Script {
    type Message = u64;
    type Output = (u32, u64);

    fn start(&mut self, _ctx: &NodeContext, out: &mut Outlet<'_, u64>) {
        self.act(out);
    }

    fn round(
        &mut self,
        _ctx: &NodeContext,
        round: u32,
        inbox: &Inbox<'_, u64>,
        out: &mut Outlet<'_, u64>,
    ) -> Control<(u32, u64)> {
        for (port, &msg) in inbox.iter() {
            self.absorb(port, msg);
        }
        if round >= self.halt_round {
            return Control::Halt((round, self.checksum));
        }
        self.act(out);
        Control::Continue
    }
}

fn arb_gnp() -> impl Strategy<Value = Graph> {
    (1usize..40, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = SplitMix64::new(seed);
        let p = 0.02 + (rng.next_u64() % 49) as f64 / 100.0;
        Graph::gnp(n, p, &mut rng)
    })
}

/// A fault plan with every fault class active, rates derived from one seed.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), any::<u64>()).prop_map(|(seed, knobs)| {
        let mut rng = SplitMix64::new(knobs);
        FaultPlan::new(seed)
            .with_drop((rng.next_u64() % 3_000) as u32)
            .with_duplication((rng.next_u64() % 2_000) as u32)
            .with_delay(
                (rng.next_u64() % 3_000) as u32,
                1 + (rng.next_u64() % 4) as u32,
            )
            .with_crashes((rng.next_u64() % 1_500) as u32, (rng.next_u64() % 8) as u32)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Rate-0 plans take the fault-free path bit for bit.
    #[test]
    fn rate_zero_plan_equals_fault_free_executor(
        g in arb_gnp(),
        proto_seed in any::<u64>(),
        plan_seed in any::<u64>(),
    ) {
        let n = g.node_count();
        let ids = IdAssignment::sequential(n);
        let protocols = |seed: u64| (0..n).map(move |v| Script::new(seed, v));
        let plan = FaultPlan::new(plan_seed);
        prop_assert!(plan.is_pass_through());

        let plain = Executor::congest(&g, &ids)
            .run(protocols(proto_seed), 16)
            .expect("scripts halt by round 13");
        let faulty = Executor::congest(&g, &ids)
            .run_with_faults(protocols(proto_seed), 16, &plan)
            .expect("scripts halt by round 13");
        prop_assert_eq!(faulty.meter, plain.meter);
        prop_assert_eq!(faulty.budget_bits, plain.budget_bits);
        prop_assert_eq!(faulty.into_outputs(), Some(plain.outputs));
    }

    /// One plan, one schedule: sequential, repeated, and parallel runs at
    /// every thread count agree bit for bit.
    #[test]
    fn same_seed_faulty_runs_are_bit_identical_across_thread_counts(
        g in arb_gnp(),
        proto_seed in any::<u64>(),
        plan in arb_plan(),
    ) {
        let n = g.node_count();
        let ids = IdAssignment::sequential(n);
        let protocols = |seed: u64| (0..n).map(move |v| Script::new(seed, v));

        let seq = Executor::congest(&g, &ids)
            .run_with_faults(protocols(proto_seed), 16, &plan)
            .expect("scripts halt by round 13");
        let again = Executor::congest(&g, &ids)
            .run_with_faults(protocols(proto_seed), 16, &plan)
            .expect("scripts halt by round 13");
        prop_assert_eq!(&again.outcomes, &seq.outcomes);
        prop_assert_eq!(again.meter, seq.meter);

        for threads in [2usize, 3, 5, 16] {
            let par = Executor::congest(&g, &ids)
                .run_parallel_with_faults(protocols(proto_seed), 16, threads, &plan)
                .expect("scripts halt by round 13");
            prop_assert_eq!(&par.outcomes, &seq.outcomes, "threads={}", threads);
            prop_assert_eq!(par.meter, seq.meter, "threads={}", threads);
        }
    }
}
