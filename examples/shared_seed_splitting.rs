//! Lemma 3.4 and Theorem 3.6: how far does a short shared seed go?
//!
//! First solves the splitting problem in zero rounds from an `O(log n)`-bit
//! shared seed (k-wise and ε-biased expansions), then builds a full network
//! decomposition in CONGEST from `poly(log n)` shared bits.
//!
//! ```sh
//! cargo run --example shared_seed_splitting
//! ```

use locality::core::splitting::{solve_shared, SeedExpansion};
use locality::prelude::*;

fn main() {
    let mut sm = SplitMix64::new(3);

    // --- Splitting (Lemma 3.4): zero rounds. ---
    let h = SplittingInstance::random(500, 1000, 32, &mut sm);
    println!(
        "splitting instance: |U| = {}, |V| = {}, min degree = {}",
        h.u_count(),
        h.v_count(),
        h.min_degree()
    );
    let seed = SharedSeed::from_prng(61 * 8, &mut sm);
    for (name, expansion) in [
        ("8-wise expansion", SeedExpansion::KWise(8)),
        ("ε-biased (128 seed bits)", SeedExpansion::EpsBiased),
    ] {
        let a = solve_shared(&h, &seed, expansion).expect("seed is long enough");
        println!(
            "  {name}: {} · zero rounds · {} truly random bits",
            if a.is_success() { "success" } else { "FAILED" },
            a.random_bits
        );
    }

    // --- Network decomposition from shared bits (Theorem 3.6). ---
    let g = Graph::grid(16, 16);
    let cfg = locality::core::shared::SharedDecompConfig::for_graph(&g);
    let seed = SharedSeed::from_prng(cfg.seed_bits_needed(), &mut sm);
    let out = locality::core::shared::shared_randomness_decomposition(&g, &cfg, &seed)
        .expect("seed sized by config");
    let d = out.decomposition.expect("w.h.p. success");
    let q = d.validate(&g).expect("valid");
    println!(
        "decomposition of a {}-node grid from {} shared bits (no private \
         randomness): {} colors, diameter {}, {} CONGEST rounds",
        g.node_count(),
        out.shared_bits,
        q.colors,
        q.max_diameter,
        out.meter.rounds
    );
}
