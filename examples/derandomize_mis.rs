//! The completeness mechanism: a network decomposition turns into a
//! deterministic MIS (and (∆+1)-coloring) — why decomposition is the master
//! problem of `P-RLOCAL` vs `P-LOCAL`.
//!
//! ```sh
//! cargo run --example derandomize_mis
//! ```

use locality::core::coloring;
use locality::core::decomposition::{ball_carving_decomposition, derandomized_decomposition};
use locality::core::mis;
use locality::prelude::*;

fn main() {
    let mut sm = SplitMix64::new(8);
    let g = Graph::gnp_connected(250, 0.015, &mut sm);
    println!(
        "graph: n = {}, m = {}, ∆ = {}",
        g.node_count(),
        g.edge_count(),
        g.max_degree()
    );

    // Randomized baseline: Luby.
    let luby = mis::luby(&g, &mut PrngSource::seeded(17));
    mis::verify_mis(&g, &luby.in_mis).expect("Luby output is an MIS");
    println!(
        "Luby:                      {:>4} rounds, {:>6} random bits",
        luby.meter.rounds, luby.meter.random_bits
    );

    // Deterministic route 1: ball-carving decomposition, then greedy.
    let order: Vec<usize> = (0..g.node_count()).collect();
    let carve = ball_carving_decomposition(&g, &order);
    let det = mis::via_decomposition(&g, &carve.decomposition);
    mis::verify_mis(&g, &det.in_mis).expect("derandomized output is an MIS");
    println!(
        "carving + decomposition:   {:>4} rounds, {:>6} random bits",
        det.meter.rounds, det.meter.random_bits
    );

    // Deterministic route 2: conditional-expectations decomposition
    // (the P-RLOCAL = P-SLOCAL derandomization made explicit), on a smaller
    // graph — the method is O(n²·cap²) per phase.
    let small = Graph::grid(8, 8);
    let derand = derandomized_decomposition(&small, 10);
    let det2 = mis::via_decomposition(&small, &derand.decomposition);
    mis::verify_mis(&small, &det2.in_mis).expect("MIS");
    println!(
        "cond-expectation route (8×8 grid): {} phases, {} rounds, 0 random bits",
        derand.phases, det2.meter.rounds
    );

    // Coloring follows the same pattern.
    let col = coloring::via_decomposition(&g, &carve.decomposition);
    coloring::verify_coloring(&g, &col.colors, g.max_degree() + 1).expect("proper");
    println!(
        "deterministic (∆+1)-coloring via decomposition: {} rounds",
        col.meter.rounds
    );
}
