//! Quickstart: build a graph, run the randomized Elkin–Neiman network
//! decomposition, validate it, and inspect the cost meters.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use locality::prelude::*;

fn main() {
    // A sparse connected random graph on 400 nodes.
    let mut seed = SplitMix64::new(2024);
    let g = Graph::gnp_connected(400, 3.0 / 400.0, &mut seed);
    println!(
        "graph: n = {}, m = {}, ∆ = {}",
        g.node_count(),
        g.edge_count(),
        g.max_degree()
    );

    // The standard randomized regime: unbounded private coins.
    let cfg = ElkinNeimanConfig::for_graph(&g);
    let mut coins = PrngSource::seeded(7);
    let run = elkin_neiman(&g, &cfg, &mut coins);

    let d = run
        .decomposition
        .as_ref()
        .expect("w.h.p. the construction succeeds");
    let q = d.validate(&g).expect("the validator agrees");
    println!(
        "decomposition: {} clusters, {} colors, max strong diameter {}",
        q.clusters, q.colors, q.max_diameter
    );
    println!(
        "cost: {} CONGEST rounds, {} messages, max message {} bits, {} random bits",
        run.meter.rounds, run.meter.messages, run.meter.max_message_bits, run.meter.random_bits
    );
    assert!(
        run.meter.congest_clean(),
        "every message fits O(log n) bits"
    );

    // Per-phase clustering fractions — the [EN16, Claim 6] constant.
    let fractions: Vec<String> = run
        .per_phase_fractions()
        .iter()
        .map(|f| format!("{f:.2}"))
        .collect();
    println!("per-phase clustered fractions: {}", fractions.join(" "));

    // The same construction under Θ(log² n)-wise independent radii
    // (Theorem 3.5): only the seed is truly random.
    let k = (g.log2_n() * g.log2_n()) as usize;
    let kw = KWiseBits::from_source(k, &mut PrngSource::seeded(99)).expect("seed fits");
    let run_kw = elkin_neiman_kwise(&g, &cfg, &kw);
    let d_kw = run_kw.decomposition.expect("limited independence suffices");
    let q_kw = d_kw.validate(&g).expect("valid");
    println!(
        "k-wise regime (k = {k}): {} colors, diameter {}, total true randomness {} bits",
        q_kw.colors, q_kw.max_diameter, run_kw.meter.random_bits
    );
}
