//! Quickstart: pin a graph in a serving [`Session`], decompose it once, and
//! answer MIS / coloring / verification requests off the shared cache.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use locality::prelude::*;

fn main() {
    // A sparse connected random graph on 400 nodes, pinned in a session.
    let mut seed = SplitMix64::new(2024);
    let g = Graph::gnp_connected(400, 3.0 / 400.0, &mut seed);
    println!(
        "graph: n = {}, m = {}, ∆ = {}",
        g.node_count(),
        g.edge_count(),
        g.max_degree()
    );
    let mut session = Session::new(g);

    // Decompose once. The session validates the decomposition a single time
    // and every later request reuses it.
    let Response::Decompose { quality, meter, .. } = session
        .solve(&Request::decompose())
        .expect("decomposes")
        .clone()
    else {
        unreachable!("Decompose requests get Decompose responses");
    };
    println!(
        "decomposition: {} clusters, {} colors, max strong diameter {} ({} sequential rounds)",
        quality.clusters, quality.colors, quality.max_diameter, meter.rounds
    );

    // MIS and (∆+1)-coloring consume that same cached decomposition — the
    // paper's "decomposition ⇒ everything", served as typed requests.
    let Response::Mis { in_mis, meter } = session.solve(&Request::mis()).expect("solves").clone()
    else {
        unreachable!("Mis requests get Mis responses");
    };
    println!(
        "deterministic MIS: {} members, {} LOCAL rounds, {} random bits",
        in_mis.iter().filter(|&&x| x).count(),
        meter.rounds,
        meter.random_bits
    );
    let Response::Coloring {
        colors,
        palette,
        meter,
    } = session.solve(&Request::coloring()).expect("solves").clone()
    else {
        unreachable!("Coloring requests get Coloring responses");
    };
    println!(
        "deterministic (∆+1)-coloring: {} colors used of palette {}, {} LOCAL rounds",
        colors.iter().max().map_or(0, |c| c + 1),
        palette,
        meter.rounds
    );

    // Both answers verify — through the same request API.
    for (name, req) in [
        ("MIS", Request::verify_mis(in_mis)),
        ("coloring", Request::verify_coloring(colors, palette)),
    ] {
        let Response::Verify(report) = session.solve(&req).expect("verifies") else {
            unreachable!("Verify requests get Verify responses");
        };
        assert!(report.ok, "{name} must verify: {:?}", report.detail);
        println!("{name} verified: ok");
    }

    // A randomized baseline rides the same session (strategy = Direct), and
    // repeating any request is a cache hit.
    let luby = Request::Mis(
        MisOptions::new()
            .with_strategy(Strategy::Direct)
            .with_seed(7),
    );
    let Response::Mis { meter, .. } = session.solve(&luby).expect("solves") else {
        unreachable!("Mis requests get Mis responses");
    };
    println!(
        "randomized Luby baseline: {} CONGEST rounds, {} random bits",
        meter.rounds, meter.random_bits
    );
    session.solve(&Request::mis()).expect("cache hit");

    let stats = session.stats();
    println!(
        "session stats: {} requests, {} cache hits, {} solver runs, {} decomposition built",
        stats.requests, stats.response_hits, stats.solver_runs, stats.decompositions_built
    );
    assert_eq!(
        stats.decompositions_built, 1,
        "one decomposition served everything"
    );
}
