//! Theorem 3.1: one private random bit per `h` hops suffices.
//!
//! Places single independent bits on an `h`-dominating set, gathers them via
//! the Lemma 3.2 ruling-set clustering, and decomposes the cluster graph
//! with those bits alone (Lemma 3.3).
//!
//! ```sh
//! cargo run --example sparse_randomness
//! ```

use locality::core::sparse::{
    choose_holders, max_weak_diameter, sparse_randomness_decomposition, SparsePipelineConfig,
};
use locality::prelude::*;

fn main() {
    // The regime needs diameter ≫ the ruling separation h·polylog(n), so use
    // a long cycle (a G(n,p) graph of logarithmic diameter degenerates to the
    // trivial single-cluster case).
    let g = Graph::cycle(2048);
    println!("graph: n = {}, m = {}", g.node_count(), g.edge_count());

    for h in [1u32, 2, 4] {
        let holders = choose_holders(&g, h);
        let mut coin_source = PrngSource::seeded(100 + h as u64);
        let bits = SparseBits::place(&holders, &mut coin_source);
        let cfg = SparsePipelineConfig::for_graph(&g, h);
        let out = sparse_randomness_decomposition(&g, &bits, &cfg);

        match out.decomposition {
            Some(d) => {
                let q = d.validate(&g).expect("valid decomposition");
                println!(
                    "h = {h}: {} holders ({} bits in the whole network, vs n = {}), \
                     {} Voronoi clusters (radius ≤ {}), result: {} colors, \
                     weak diameter ≤ {}, {} rounds",
                    holders.len(),
                    out.total_bits_available,
                    g.node_count(),
                    out.cluster_count,
                    out.max_voronoi_radius,
                    q.colors,
                    max_weak_diameter(&g, &d),
                    out.meter.rounds
                );
            }
            None => println!(
                "h = {h}: pipeline exhausted its gathered randomness \
                 ({} shortfalls) — rerun with a denser placement",
                out.tape_shortfalls
            ),
        }
    }
}
