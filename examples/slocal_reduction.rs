//! The SLOCAL→LOCAL reduction of [GKM17]: given a network decomposition of
//! the power graph `G^{2r+1}`, ANY sequential-local algorithm of locality
//! `r` becomes a LOCAL-model algorithm — the bridge through which the paper
//! derandomizes everything in `P-RLOCAL`.
//!
//! ```sh
//! cargo run --release --example slocal_reduction
//! ```

use locality::core::decomposition::ball_carving_decomposition;
use locality::core::mis::verify_mis;
use locality::core::slocal::run_slocal_via_decomposition;
use locality::prelude::*;

fn main() {
    let mut sm = SplitMix64::new(12);
    let g = Graph::gnp_connected(150, 0.02, &mut sm);
    println!("graph: n = {}, m = {}", g.node_count(), g.edge_count());

    // Greedy MIS is an SLOCAL algorithm of locality r = 1. Decompose G^3.
    let r = 1;
    let gp = power_graph(&g, 2 * r + 1);
    let order: Vec<usize> = (0..gp.node_count()).collect();
    let d = ball_carving_decomposition(&gp, &order).decomposition;
    let q = d.validate_weak(&gp).expect("valid power decomposition");
    println!(
        "decomposition of G^{}: {} clusters, {} colors",
        2 * r + 1,
        q.clusters,
        q.colors
    );

    let out = run_slocal_via_decomposition(&g, r, &d, |view| {
        // The SLOCAL step: join the MIS iff no processed neighbor joined.
        !view
            .neighbors(view.center())
            .into_iter()
            .any(|u| view.output(u).copied().unwrap_or(false))
    });
    verify_mis(&g, &out.outputs).expect("the reduction yields a valid MIS");
    println!(
        "greedy-MIS via the reduction: valid, {} LOCAL rounds, 0 random bits",
        out.meter.rounds
    );

    // A locality-2 algorithm through the same machinery: distance-2 coloring.
    let r2 = 2;
    let gp5 = power_graph(&g, 2 * r2 + 1);
    let order5: Vec<usize> = (0..gp5.node_count()).collect();
    let d5 = ball_carving_decomposition(&gp5, &order5).decomposition;
    let out2 = run_slocal_via_decomposition(&g, r2, &d5, |view| {
        let used: Vec<usize> = view
            .nodes()
            .into_iter()
            .filter(|&u| u != view.center() && view.distance(u).unwrap_or(9) <= 2)
            .filter_map(|u| view.output(u).copied())
            .collect();
        (0..).find(|c| !used.contains(c)).expect("free color")
    });
    let g2 = power_graph(&g, 2);
    locality::core::coloring::verify_coloring(&g2, &out2.outputs, g2.max_degree() + 1)
        .expect("distance-2 coloring is proper on G^2");
    println!(
        "distance-2 coloring via the reduction: valid on G^2, {} LOCAL rounds",
        out2.meter.rounds
    );
}
