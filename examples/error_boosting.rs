//! Theorem 4.2: boosting the success probability by shattering.
//!
//! Runs the Elkin–Neiman stage with a deliberately starved phase budget so
//! that survivors exist, then watches the deterministic stage absorb them:
//! ruling set over the survivors, tiny cluster graph, ball-carving finisher.
//!
//! ```sh
//! cargo run --example error_boosting
//! ```

use locality::core::boost::{boosted_decomposition, BoostConfig};
use locality::core::decomposition::ElkinNeimanConfig;
use locality::prelude::*;

fn main() {
    let mut sm = SplitMix64::new(5);
    let g = Graph::gnp_connected(400, 0.008, &mut sm);
    let ids = IdAssignment::sequential(g.node_count());
    println!("graph: n = {}, m = {}", g.node_count(), g.edge_count());

    for phases in [1u32, 2, 4, 40] {
        let cfg = BoostConfig {
            en: ElkinNeimanConfig { phases, cap: 20 },
            t_override: None,
        };
        let mut src = PrngSource::seeded(900 + phases as u64);
        let out = boosted_decomposition(&g, &ids, &cfg, &mut src);
        let d = out.decomposition.expect("the pipeline always completes");
        let q = d.validate_weak(&g).expect("weak-diameter valid");
        println!(
            "EN phases = {phases:>2}: survivors = {:>3} (max separated K = {}), \
             colors = {} (EN {} + det {}), weak diameter = {}, rounds = {}",
            out.survivor_count,
            out.separated_survivors,
            q.colors,
            out.en_colors,
            out.det_colors,
            q.max_diameter,
            out.meter.rounds
        );
    }
    println!(
        "\nTheorem 4.2's claim in action: even a starved randomized stage \
         yields a complete decomposition, because the deterministic stage \
         only ever faces a shattered, polylog-size cluster graph."
    );
}
