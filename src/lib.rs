//! # locality — randomness as a resource in local distributed graph algorithms
//!
//! Umbrella crate for the reproduction of **Ghaffari & Kuhn, "On the Use of
//! Randomness in Local Distributed Graph Algorithms" (PODC 2019)**.
//!
//! The workspace builds, from scratch:
//!
//! - [`graph`]: the graph substrate (CSR graphs, generators, traversal,
//!   cluster graphs);
//! - [`rand`]: randomness as a metered resource (finite tapes, k-wise
//!   independent families, ε-biased spaces, shared seeds, sparse placements);
//! - [`sim`]: a synchronous LOCAL/CONGEST round simulator plus an SLOCAL
//!   runtime, with round/message/bit accounting;
//! - [`core`]: the paper's algorithms — network decompositions under every
//!   restricted-randomness regime (Theorems 3.1, 3.5, 3.6, 3.7), the splitting
//!   problem (Lemma 3.4), conflict-free hypergraph multicoloring
//!   (Theorem 3.5), error boosting by shattering (Theorem 4.2), and
//!   brute-force/threshold derandomization (Lemma 4.1, Theorems 4.3/4.6) —
//!   along with the consumers (MIS, (∆+1)-coloring), local checkers, and the
//!   `serve` façade (typed requests, caching sessions, sharded fleets) in
//!   front of all of them.
//!
//! # Quickstart
//!
//! ```
//! use locality::prelude::*;
//!
//! // A random graph and a fully random Elkin–Neiman decomposition.
//! let g = Graph::gnp(200, 0.03, &mut SplitMix64::new(7));
//! let cfg = ElkinNeimanConfig::for_graph(&g);
//! let mut src = PrngSource::seeded(1);
//! let run = elkin_neiman(&g, &cfg, &mut src);
//! let d = run.decomposition.expect("whp success");
//! d.validate(&g).expect("valid decomposition");
//! assert!(d.color_count() <= cfg.phases as usize);
//! ```

// Bracketed citation keys ([EN16], [GKM17], ...) are bibliography
// references, not intra-doc links.
#![allow(rustdoc::broken_intra_doc_links)]
pub use locality_core as core;
pub use locality_graph as graph;
pub use locality_rand as rand;
pub use locality_sim as sim;

/// The most frequently used items across the workspace.
pub mod prelude {
    pub use locality_core::algorithm::{AlgorithmRun, LocalAlgorithm, RoundStats};
    pub use locality_core::boost::{boosted_decomposition, BoostConfig};
    pub use locality_core::checkers;
    pub use locality_core::coloring;
    pub use locality_core::decomposition::{
        elkin_neiman, elkin_neiman_kwise, Decomposition, ElkinNeimanConfig,
    };
    pub use locality_core::decomposition::{
        repair_decomposition, RepairOptions, RepairOutcome, RepairPath,
    };
    pub use locality_core::mis;
    pub use locality_core::ruling::{ruling_set, RulingSetParams};
    pub use locality_core::serve::{
        entries, ColoringOptions, CostProbe, DecompMethod, DecompProvenance, DecomposeOptions,
        DegradePolicy, Fleet, HttpConfig, HttpError, HttpServer, MetricsSnapshot, MisOptions,
        ProblemKind, RepairStats, ReplyMode, Request, Response, RestoreOutcome, RetryPolicy,
        Session, SessionStats, ShardTiming, SlocalOptions, SlocalOutput, SlocalTask, SolveError,
        SolverEntry, StoreError, Strategy, VerifyReport, VerifyRequest, WireError,
    };
    pub use locality_core::shared::{shared_randomness_decomposition, SharedDecompConfig};
    pub use locality_core::sparse::{sparse_randomness_decomposition, SparsePipelineConfig};
    pub use locality_core::splitting::{self, SplittingInstance};
    pub use locality_graph::prelude::*;
    pub use locality_rand::prelude::*;
    pub use locality_sim::cost::CostMeter;
    pub use locality_sim::executor::{BatchProtocol, Control, Executor, Inbox, Outlet};
}
