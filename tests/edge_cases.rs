//! Cross-crate edge cases: degenerate graphs through every pipeline.

use locality::core::boost::{boosted_decomposition, BoostConfig};
use locality::core::decomposition::{
    ball_carving_decomposition, derandomized_decomposition, ElkinNeimanConfig,
};
use locality::core::mis;
use locality::core::ruling::{ruling_set, RulingSetParams};
use locality::core::shared::{shared_randomness_decomposition, SharedDecompConfig};
use locality::prelude::*;

#[test]
fn single_node_through_every_construction() {
    let g = Graph::empty(1);
    let ids = IdAssignment::sequential(1);

    let en = elkin_neiman(
        &g,
        &ElkinNeimanConfig::for_graph(&g),
        &mut PrngSource::seeded(1),
    );
    assert_eq!(en.decomposition.unwrap().validate(&g).unwrap().clusters, 1);

    let carve = ball_carving_decomposition(&g, &[0]);
    assert_eq!(carve.colors, 1);

    let derand = derandomized_decomposition(&g, 4);
    assert_eq!(derand.decomposition.validate(&g).unwrap().clusters, 1);

    let cfg = SharedDecompConfig::for_graph(&g);
    let seed = SharedSeed::from_prng(cfg.seed_bits_needed(), &mut SplitMix64::new(1));
    let sh = shared_randomness_decomposition(&g, &cfg, &seed).unwrap();
    assert!(sh.decomposition.is_some());

    let r = ruling_set(&g, &ids, &[0], RulingSetParams { alpha: 3 });
    assert_eq!(r.set, vec![0]);

    let boost = boosted_decomposition(
        &g,
        &ids,
        &BoostConfig::for_graph(&g),
        &mut PrngSource::seeded(2),
    );
    assert!(boost.decomposition.unwrap().validate_weak(&g).is_ok());

    let m = mis::luby(&g, &mut PrngSource::seeded(3));
    assert_eq!(m.in_mis, vec![true]);
}

#[test]
fn two_isolated_nodes_decompose_with_one_color() {
    let g = Graph::empty(2);
    let en = elkin_neiman(
        &g,
        &ElkinNeimanConfig::for_graph(&g),
        &mut PrngSource::seeded(4),
    );
    let d = en.decomposition.unwrap();
    let q = d.validate(&g).unwrap();
    assert_eq!(q.clusters, 2);
    assert_eq!(q.max_diameter, 0);
}

#[test]
fn disconnected_components_all_complete() {
    // Each construction must handle multiple components in one run.
    let g = Graph::disjoint_union(&[Graph::cycle(9), Graph::path(7), Graph::complete(4)]);
    let cfg = ElkinNeimanConfig::for_graph(&g);
    let en = elkin_neiman(&g, &cfg, &mut PrngSource::seeded(5));
    en.decomposition
        .expect("all components")
        .validate(&g)
        .unwrap();

    let order: Vec<usize> = (0..g.node_count()).collect();
    let carve = ball_carving_decomposition(&g, &order);
    carve.decomposition.validate(&g).unwrap();

    let m = mis::via_decomposition(&g, &carve.decomposition);
    mis::verify_mis(&g, &m.in_mis).unwrap();
}

#[test]
fn star_and_clique_extremes() {
    // Extreme degree distributions exercise the gap rule's tie handling.
    for g in [Graph::star(40), Graph::complete(20)] {
        let cfg = ElkinNeimanConfig::for_graph(&g);
        let en = elkin_neiman(&g, &cfg, &mut PrngSource::seeded(6));
        let d = en.decomposition.expect("dense graphs cluster quickly");
        let q = d.validate(&g).unwrap();
        assert!(q.max_diameter <= 2);
    }
}

#[test]
fn long_path_respects_logarithmic_color_budget() {
    let g = Graph::path(512);
    let order: Vec<usize> = (0..512).collect();
    let carve = ball_carving_decomposition(&g, &order);
    let q = carve.decomposition.validate(&g).unwrap();
    assert!(q.colors <= 10, "colors {}", q.colors);
    assert!(q.max_diameter <= 2 * g.log2_n(), "diam {}", q.max_diameter);
}

#[test]
fn meters_compose_across_pipeline_stages() {
    // The CostMeter algebra: EN stage + consumer stage.
    let mut p = SplitMix64::new(7);
    let g = Graph::gnp_connected(80, 0.04, &mut p);
    let cfg = ElkinNeimanConfig::for_graph(&g);
    let en = elkin_neiman(&g, &cfg, &mut PrngSource::seeded(8));
    let d = en.decomposition.unwrap();
    let m = mis::via_decomposition(&g, &d);
    let total = en.meter + m.meter;
    assert_eq!(total.rounds, en.meter.rounds + m.meter.rounds);
    assert_eq!(total.random_bits, en.meter.random_bits);
    assert!(total.congest_clean());
}
