//! Cross-crate integration tests: every theorem pipeline end-to-end, with
//! randomness metering asserted.

use locality::core::boost::{boosted_decomposition, BoostConfig};
use locality::core::cfc::{conflict_free_multicolor, random_hypergraph};
use locality::core::decomposition::ElkinNeimanConfig;
use locality::core::shared::{shared_randomness_decomposition, SharedDecompConfig};
use locality::core::sparse::{
    choose_holders, sparse_randomness_decomposition, SparsePipelineConfig,
};
use locality::core::splitting::{solve_shared, SeedExpansion, SplittingInstance};
use locality::prelude::*;

#[test]
fn theorem_3_1_sparse_bits_full_pipeline() {
    // One bit per h hops on a long cycle: bits ≪ n, valid (O(log n), ·)
    // decomposition out.
    let g = Graph::cycle(1024);
    for h in [1u32, 2] {
        let holders = choose_holders(&g, h);
        let mut src = PrngSource::seeded(42 + h as u64);
        let bits = SparseBits::place(&holders, &mut src);
        assert!(bits.total_bits() < g.node_count() as u64);
        let cfg = SparsePipelineConfig::for_graph(&g, h);
        let out = sparse_randomness_decomposition(&g, &bits, &cfg);
        let d = out.decomposition.unwrap_or_else(|| panic!("h={h} failed"));
        let q = d.validate(&g).expect("valid");
        assert!(q.colors as u32 <= cfg.en.phases + 1);
        assert!(out.bits_consumed <= out.total_bits_available);
    }
}

#[test]
fn theorem_3_5_kwise_radii_match_full_independence_quality() {
    let mut p = SplitMix64::new(7);
    let g = Graph::gnp_connected(200, 0.02, &mut p);
    let cfg = ElkinNeimanConfig::for_graph(&g);
    let k = (g.log2_n() * g.log2_n()) as usize;
    let kw = KWiseBits::from_source(k, &mut PrngSource::seeded(5)).unwrap();
    let out = elkin_neiman_kwise(&g, &cfg, &kw);
    let d = out
        .decomposition
        .expect("polylog-wise independence suffices");
    let q = d.validate(&g).expect("valid");
    // Exactly the seed is metered: no hidden randomness.
    assert_eq!(out.meter.random_bits, 61 * k as u64);
    assert!(q.colors as u32 <= cfg.phases);
}

#[test]
fn theorem_3_6_shared_bits_scale_polylog() {
    // The seed requirement must grow with log n only.
    let cfg_small = SharedDecompConfig::for_n(1 << 8);
    let cfg_big = SharedDecompConfig::for_n(1 << 16);
    assert!(cfg_big.seed_bits_needed() <= 8 * cfg_small.seed_bits_needed());

    let g = Graph::grid(12, 12);
    let cfg = SharedDecompConfig::for_graph(&g);
    let mut sm = SplitMix64::new(9);
    let seed = SharedSeed::from_prng(cfg.seed_bits_needed(), &mut sm);
    let out = shared_randomness_decomposition(&g, &cfg, &seed).expect("seed sized");
    let d = out.decomposition.expect("whp success");
    let q = d.validate(&g).expect("valid");
    assert!(q.max_diameter <= 2 * cfg.max_cluster_radius());
    assert_eq!(out.meter.random_bits, out.shared_bits);
}

#[test]
fn lemma_3_4_splitting_budgets() {
    let mut p = SplitMix64::new(11);
    let h = SplittingInstance::random(200, 400, 24, &mut p);
    let mut sm = SplitMix64::new(13);
    let seed = SharedSeed::from_prng(61 * 10, &mut sm);
    // ε-biased: 128 bits ≈ O(log n); k-wise: 610 bits ≈ O(log² n).
    let eps = solve_shared(&h, &seed, SeedExpansion::EpsBiased).unwrap();
    assert!(eps.is_success());
    assert_eq!(eps.random_bits, 128);
    let kw = solve_shared(&h, &seed, SeedExpansion::KWise(10)).unwrap();
    assert!(kw.is_success());
    assert_eq!(kw.random_bits, 610);
    // Both consume strictly less than one bit per V-node would.
    assert!(eps.random_bits < h.v_count() as u64);
}

#[test]
fn theorem_3_5_cfc_reduction() {
    let mut p = SplitMix64::new(15);
    let hg = random_hypergraph(400, 80, &[2, 5, 48, 100], &mut p);
    let kw = KWiseBits::from_source(64, &mut PrngSource::seeded(17)).unwrap();
    let out = conflict_free_multicolor(&hg, &kw, 8, 3);
    assert!(out.violations.is_empty(), "violations {:?}", out.violations);
    // The marked classes reduced to polylog-size subproblems.
    for c in out.class_stats.iter().filter(|c| c.marked) {
        assert!(
            c.max_marked <= 60,
            "class {} kept {}",
            c.class,
            c.max_marked
        );
    }
}

#[test]
fn theorem_4_2_boost_absorbs_survivors_on_every_family() {
    use locality_graph::generators::Family;
    let mut p = SplitMix64::new(19);
    for fam in Family::ALL {
        let g = fam.generate(150, &mut p);
        let ids = IdAssignment::sequential(g.node_count());
        let cfg = BoostConfig {
            en: ElkinNeimanConfig { phases: 2, cap: 12 },
            t_override: None,
        };
        let mut src = PrngSource::seeded(fam as u64 * 3 + 1);
        let out = boosted_decomposition(&g, &ids, &cfg, &mut src);
        let d = out.decomposition.expect("pipeline completes");
        d.validate_weak(&g)
            .unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
    }
}

#[test]
fn deterministic_constructions_consume_zero_randomness() {
    use locality::core::decomposition::{ball_carving_decomposition, derandomized_decomposition};
    let g = Graph::grid(7, 7);
    let order: Vec<usize> = (0..49).collect();
    let carve = ball_carving_decomposition(&g, &order);
    carve.decomposition.validate(&g).unwrap();
    let derand = derandomized_decomposition(&g, 8);
    derand.decomposition.validate(&g).unwrap();
    // Determinism: identical outputs across calls.
    let carve2 = ball_carving_decomposition(&g, &order);
    assert_eq!(carve.decomposition, carve2.decomposition);
    let derand2 = derandomized_decomposition(&g, 8);
    assert_eq!(derand.decomposition, derand2.decomposition);
}
