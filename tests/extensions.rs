//! Integration tests for the extension modules (sinkless orientation, the
//! SLOCAL→LOCAL reduction, and the engine protocol library).

use locality::core::decomposition::ball_carving_decomposition;
use locality::core::sinkless::{check_sinkless, deterministic_sinkless, randomized_sinkless};
use locality::core::slocal::run_slocal_via_decomposition;
use locality::prelude::*;
use locality_graph::generators::Family;
use locality_sim::protocols::{BfsProtocol, ConvergecastSum, LeaderElection};

#[test]
fn sinkless_orientation_on_every_family() {
    let mut p = SplitMix64::new(161);
    for fam in Family::ALL {
        let g = fam.generate(100, &mut p);
        let det = deterministic_sinkless(&g).expect("always succeeds");
        assert!(
            check_sinkless(&g, &det.orientation).accepted(),
            "{}: sinks {:?}",
            fam.name(),
            det.orientation.sinks(&g)
        );
    }
}

#[test]
fn randomized_sinkless_reproducible_and_valid() {
    let mut p = SplitMix64::new(163);
    let g = Graph::random_regular(80, 4, &mut p);
    let a = randomized_sinkless(&g, &mut PrngSource::seeded(9), 200);
    let b = randomized_sinkless(&g, &mut PrngSource::seeded(9), 200);
    assert_eq!(a.orientation, b.orientation);
    assert!(a.orientation.is_sinkless(&g));
}

#[test]
fn slocal_reduction_runs_mis_and_coloring_on_families() {
    let mut p = SplitMix64::new(167);
    for fam in [Family::Cycle, Family::Grid, Family::RandomTree] {
        let g = fam.generate(64, &mut p);
        let gp = power_graph(&g, 3);
        let order: Vec<usize> = (0..gp.node_count()).collect();
        let d = ball_carving_decomposition(&gp, &order).decomposition;
        let out = run_slocal_via_decomposition(&g, 1, &d, |view| {
            !view
                .neighbors(view.center())
                .into_iter()
                .any(|u| view.output(u).copied().unwrap_or(false))
        });
        locality::core::mis::verify_mis(&g, &out.outputs)
            .unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
    }
}

#[test]
fn protocol_stack_bfs_then_convergecast_counts_component_sizes() {
    // BFS tree from node 0, then count nodes by summing 1s up the tree —
    // the classic two-phase CONGEST composition.
    let mut p = SplitMix64::new(173);
    let g = Graph::gnp_connected(120, 0.03, &mut p);
    let ids = IdAssignment::sequential(g.node_count());
    let bfs = BfsProtocol::run(&g, &ids, &[0], 80).unwrap();
    let parents: Vec<Option<usize>> = bfs.outputs.iter().map(|&(_, p)| p).collect();
    let run = ConvergecastSum::run(&g, &ids, &parents, &vec![1; g.node_count()], 200).unwrap();
    assert_eq!(run.outputs[0], g.node_count() as u64);
    // Sequential composition of the meters is well-defined.
    let total = bfs.meter + run.meter;
    assert_eq!(total.rounds, bfs.meter.rounds + run.meter.rounds);
}

#[test]
fn leader_election_on_random_ids() {
    let mut p = SplitMix64::new(179);
    let g = Graph::gnp_connected(60, 0.06, &mut p);
    let ids = IdAssignment::random(60, 3, &mut p);
    let run = LeaderElection::run(&g, &ids, 40).unwrap();
    let min_id = (0..60).map(|v| ids.id_of(v)).min().unwrap();
    assert!(run.outputs.iter().all(|&x| x == min_id));
    assert!(run.meter.congest_clean());
}
