//! Property-based invariants across the workspace (proptest).

use locality::core::decomposition::{ball_carving_decomposition, elkin_neiman, ElkinNeimanConfig};
use locality::core::ruling::{ruling_set, verify_ruling_set, RulingSetParams};
use locality::core::splitting::{solve_kwise, SplittingInstance};
use locality::prelude::*;
use proptest::prelude::*;
// Both preludes export a `Strategy` (the serving façade's strategy enum vs
// proptest's generator trait); the generator trait is the one meant here.
use proptest::strategy::Strategy;

/// Arbitrary sparse graph: node count and an edge list over it.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..3 * n).prop_map(move |pairs| {
            let edges = pairs.into_iter().filter(|&(u, v)| u != v);
            Graph::from_edges(n, edges).expect("filtered edges are valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn carving_always_yields_valid_decomposition(g in arb_graph()) {
        let order: Vec<usize> = (0..g.node_count()).collect();
        let r = ball_carving_decomposition(&g, &order);
        let q = r.decomposition.validate(&g).expect("valid");
        prop_assert!(q.colors as u32 <= g.log2_n() + 1);
        prop_assert!(r.max_radius <= g.log2_n());
    }

    #[test]
    fn elkin_neiman_clusters_or_reports_survivors(g in arb_graph(), seed in 0u64..1000) {
        let cfg = ElkinNeimanConfig::for_graph(&g);
        let mut src = PrngSource::seeded(seed);
        let out = elkin_neiman(&g, &cfg, &mut src);
        match out.decomposition {
            Some(d) => {
                let q = d.validate(&g).expect("valid");
                prop_assert!(q.colors as u32 <= cfg.phases);
                prop_assert!(out.survivors.is_empty());
            }
            None => prop_assert!(!out.survivors.is_empty()),
        }
        // The partial labels and the survivors partition the nodes.
        let labeled = out.labels.iter().filter(|l| l.is_some()).count();
        prop_assert_eq!(labeled + out.survivors.len(), g.node_count());
    }

    #[test]
    fn ruling_sets_hold_their_contract(g in arb_graph(), alpha in 1u32..6) {
        let ids = IdAssignment::sequential(g.node_count());
        let all: Vec<usize> = g.nodes().collect();
        let r = ruling_set(&g, &ids, &all, RulingSetParams { alpha });
        prop_assert!(verify_ruling_set(&g, &all, &r.set, alpha, r.beta).is_ok());
    }

    #[test]
    fn bfs_distances_satisfy_triangle_inequality(g in arb_graph()) {
        let n = g.node_count();
        let d0 = bfs_distances(&g, 0);
        let d1 = bfs_distances(&g, n - 1);
        // |d0(v) - d0(u)| <= 1 across every edge.
        for (u, v) in g.edges() {
            if let (Some(a), Some(b)) = (d0[u], d0[v]) {
                prop_assert!(a.abs_diff(b) <= 1);
            }
            if let (Some(a), Some(b)) = (d1[u], d1[v]) {
                prop_assert!(a.abs_diff(b) <= 1);
            }
        }
    }

    #[test]
    fn kwise_bits_are_pure_functions_of_seed(k in 1usize..12, seed in 0u64..500, idx in 0u64..10_000) {
        let a = KWiseBits::from_source(k, &mut PrngSource::seeded(seed)).unwrap();
        let b = KWiseBits::from_source(k, &mut PrngSource::seeded(seed)).unwrap();
        prop_assert_eq!(a.bit(idx), b.bit(idx));
        prop_assert_eq!(a.word(idx), b.word(idx));
        prop_assert!(a.word(idx) < locality::rand::kwise::MERSENNE61);
    }

    #[test]
    fn splitting_checker_counts_failures_exactly(
        v_count in 4usize..30,
        seed in 0u64..200,
    ) {
        let mut p = SplitMix64::new(seed);
        let h = SplittingInstance::random(10, v_count, 2, &mut p);
        let kw = KWiseBits::from_source(4, &mut PrngSource::seeded(seed)).unwrap();
        let attempt = solve_kwise(&h, &kw);
        // Recount independently.
        let recount = (0..h.u_count())
            .filter(|&u| {
                let colors: Vec<bool> =
                    h.neighbors(u).iter().map(|&v| attempt.colors[v]).collect();
                colors.iter().all(|&c| c) || colors.iter().all(|&c| !c)
            })
            .count();
        prop_assert_eq!(attempt.failures.len(), recount);
    }

    #[test]
    fn geometric_draws_meter_exactly_their_value(seed in 0u64..500, cap in 1u32..40) {
        let mut src = PrngSource::seeded(seed);
        let before = src.bits_drawn();
        let v = src.geometric(cap);
        prop_assert!(v >= 1 && v <= cap);
        prop_assert_eq!(src.bits_drawn() - before, v.min(cap) as u64);
    }
}
