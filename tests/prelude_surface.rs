//! Pins the umbrella crate's `locality::prelude` re-export surface and
//! exercises it end-to-end: if a re-export disappears or changes shape, this
//! file stops compiling.

// Import-level pin: every name the prelude promises, spelled out. A removed
// or renamed re-export is a compile error here before any test runs.
#[allow(unused_imports)]
use locality::prelude::{
    ball, bfs_distances, boosted_decomposition, bounded_bfs_distances, checkers, coloring,
    connected_components, diameter, eccentricity, elkin_neiman, elkin_neiman_kwise, is_connected,
    mis, multi_source_bfs, power_graph, ruling_set, shared_randomness_decomposition,
    sparse_randomness_decomposition, splitting, AlgorithmRun, BatchProtocol, BitSource, BitTape,
    BoostConfig, ClusterGraph, Clustering, Control, CostMeter, Decomposition, ElkinNeimanConfig,
    EpsBiasedBits, Executor, Exhausted, Graph, GraphBuilder, GraphError, IdAssignment, Inbox,
    InducedSubgraph, KWiseBits, LocalAlgorithm, Outlet, Prng, PrngSource, RoundStats,
    RulingSetParams, SharedDecompConfig, SharedSeed, SparseBits, SparsePipelineConfig, SplitMix64,
    SplittingInstance, Xoshiro256StarStar,
};

#[test]
fn quickstart_pipeline_through_the_prelude() {
    // The README/lib.rs quickstart: gnp graph → Elkin–Neiman → validate.
    let g = Graph::gnp(200, 0.03, &mut SplitMix64::new(7));
    let cfg = ElkinNeimanConfig::for_graph(&g);
    let mut src = PrngSource::seeded(1);
    let run = elkin_neiman(&g, &cfg, &mut src);
    let d = run.decomposition.expect("whp success");
    d.validate(&g).expect("valid decomposition");
    assert!(d.color_count() <= cfg.phases as usize);
}

#[test]
fn substrate_helpers_are_reachable_from_the_prelude() {
    let g = Graph::gnp(64, 0.1, &mut SplitMix64::new(3));
    let (labels, k) = connected_components(&g);
    assert_eq!(labels.len(), g.node_count());
    assert!(k >= 1);
    assert_eq!(is_connected(&g), k == 1);
    let d = bfs_distances(&g, 0);
    assert_eq!(d[0], Some(0));
    let g2 = power_graph(&g, 2);
    assert!(g2.edge_count() >= g.edge_count());
}

#[test]
fn algorithms_are_reachable_from_the_prelude() {
    let g = Graph::cycle(48);
    let ids = IdAssignment::sequential(g.node_count());
    let all: Vec<usize> = g.nodes().collect();
    let r = ruling_set(&g, &ids, &all, RulingSetParams { alpha: 2 });
    assert!(!r.set.is_empty());

    let h = SplittingInstance::random(20, 40, 4, &mut SplitMix64::new(5));
    let kw = KWiseBits::from_source(4, &mut PrngSource::seeded(9)).unwrap();
    let attempt = splitting::solve_kwise(&h, &kw);
    assert_eq!(attempt.colors.len(), h.v_count());

    let meter = CostMeter::default();
    assert_eq!(meter.rounds, 0);
}

#[test]
fn local_algorithms_are_reachable_from_the_prelude() {
    use locality::core::coloring::{verify_coloring, TrialColoring};
    use locality::core::mis::{verify_mis, LubyMis};

    let g = Graph::grid(5, 5);
    let ids = IdAssignment::sequential(g.node_count());
    let m = LubyMis::default().run(&g, &ids, 1);
    verify_mis(&g, &m.labels).unwrap();
    let c = TrialColoring::default().run(&g, &ids, 1);
    verify_coloring(&g, &c.labels, g.max_degree() + 1).unwrap();
    // Uniform stats come from the same engine metering path.
    assert!(m.stats.meter.messages > 0);
    assert!(c.stats.meter.messages > 0);
}
