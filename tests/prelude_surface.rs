//! Pins the umbrella crate's `locality::prelude` re-export surface and
//! exercises it end-to-end: if a re-export disappears or changes shape, this
//! file stops compiling.

// Import-level pin: every name the prelude promises, spelled out. A removed
// or renamed re-export is a compile error here before any test runs.
//
// Deliberately absent: `locality-audit` (ISSUE 10). The audit crate is a
// development tool over the workspace's *sources*, not part of the library
// surface — it stays out of the prelude and out of the umbrella crate's
// dependency graph entirely (it must remain buildable when the code it
// audits is not). It still builds and tests under bare `cargo build` /
// `cargo test` via the workspace default-members list.
#[allow(unused_imports)]
use locality::prelude::{
    ball, bfs_distances, boosted_decomposition, bounded_bfs_distances, checkers, coloring,
    connected_components, diameter, eccentricity, elkin_neiman, elkin_neiman_kwise, entries,
    is_connected, mis, multi_source_bfs, power_graph, random_edit_script, repair_decomposition,
    ruling_set, shared_randomness_decomposition, sparse_randomness_decomposition, splitting,
    AlgorithmRun, BatchProtocol, BitSource, BitTape, BoostConfig, ClusterGraph, Clustering,
    ColoringOptions, Control, CostMeter, CostProbe, DecompMethod, DecompProvenance,
    DecomposeOptions, Decomposition, DegradePolicy, Edit, EditBatch, EditError, EditOptions,
    ElkinNeimanConfig, EpsBiasedBits, Executor, Exhausted, Fleet, Graph, GraphBuilder, GraphError,
    HttpConfig, HttpError, HttpServer, IdAssignment, Inbox, InducedSubgraph, KWiseBits,
    LocalAlgorithm, MetricsSnapshot, MisOptions, Outlet, Prng, PrngSource, ProblemKind,
    RepairOptions, RepairOutcome, RepairPath, RepairStats, ReplyMode, Request, Response,
    RestoreOutcome, RetryPolicy, RoundStats, RulingSetParams, Session, SessionStats, ShardTiming,
    SharedDecompConfig, SharedSeed, SlocalOptions, SlocalOutput, SlocalTask, SolveError,
    SolverEntry, SparseBits, SparsePipelineConfig, SplitMix64, SplittingInstance, StoreError,
    Strategy, VerifyReport, VerifyRequest, WireError, Xoshiro256StarStar,
};

#[test]
fn quickstart_pipeline_through_the_prelude() {
    // The README/lib.rs quickstart: gnp graph → Elkin–Neiman → validate.
    let g = Graph::gnp(200, 0.03, &mut SplitMix64::new(7));
    let cfg = ElkinNeimanConfig::for_graph(&g);
    let mut src = PrngSource::seeded(1);
    let run = elkin_neiman(&g, &cfg, &mut src);
    let d = run.decomposition.expect("whp success");
    d.validate(&g).expect("valid decomposition");
    assert!(d.color_count() <= cfg.phases as usize);
}

#[test]
fn substrate_helpers_are_reachable_from_the_prelude() {
    let g = Graph::gnp(64, 0.1, &mut SplitMix64::new(3));
    let (labels, k) = connected_components(&g);
    assert_eq!(labels.len(), g.node_count());
    assert!(k >= 1);
    assert_eq!(is_connected(&g), k == 1);
    let d = bfs_distances(&g, 0);
    assert_eq!(d[0], Some(0));
    let g2 = power_graph(&g, 2);
    assert!(g2.edge_count() >= g.edge_count());
}

#[test]
fn algorithms_are_reachable_from_the_prelude() {
    let g = Graph::cycle(48);
    let ids = IdAssignment::sequential(g.node_count());
    let all: Vec<usize> = g.nodes().collect();
    let r = ruling_set(&g, &ids, &all, RulingSetParams { alpha: 2 });
    assert!(!r.set.is_empty());

    let h = SplittingInstance::random(20, 40, 4, &mut SplitMix64::new(5));
    let kw = KWiseBits::from_source(4, &mut PrngSource::seeded(9)).unwrap();
    let attempt = splitting::solve_kwise(&h, &kw);
    assert_eq!(attempt.colors.len(), h.v_count());

    let meter = CostMeter::default();
    assert_eq!(meter.rounds, 0);
}

#[test]
fn serving_facade_is_reachable_from_the_prelude() {
    // One session, all five request kinds, answered and cached.
    let g = Graph::gnp_connected(60, 0.06, &mut SplitMix64::new(11));
    let mut session = Session::new(g);
    let requests = [
        Request::decompose(),
        Request::mis(),
        Request::Mis(
            MisOptions::new()
                .with_strategy(Strategy::Direct)
                .with_seed(5),
        ),
        Request::coloring(),
        Request::slocal(SlocalTask::GreedyMis),
    ];
    for r in &requests {
        session.solve(r).expect("request solves");
    }
    let Response::Mis { in_mis, .. } = session.solve(&Request::mis()).expect("cached") else {
        panic!("MIS requests get MIS responses");
    };
    let in_mis = in_mis.clone();
    let Response::Verify(report) = session
        .solve(&Request::verify_mis(in_mis))
        .expect("verify solves")
    else {
        panic!("Verify requests get Verify responses");
    };
    assert!(report.ok);
    let stats: SessionStats = session.stats();
    assert_eq!(stats.decompositions_built, 1);
    assert!(stats.response_hits >= 1);

    // The registry is enumerable through the prelude types, both via the
    // raw table and the `entries()` iterator.
    let table: Vec<&SolverEntry> = locality::core::serve::registry().iter().collect();
    assert!(table.iter().any(|e| e.problem == ProblemKind::Mis));
    assert_eq!(entries().count(), table.len());

    // A fleet shards sessions with bit-identical results, and the timed
    // variant additionally reports per-shard wall time.
    let graphs = [Graph::cycle(20), Graph::grid(5, 4)];
    let workloads = vec![vec![Request::mis()], vec![Request::coloring()]];
    let mut fleet = Fleet::new(graphs.clone());
    let sharded = fleet.solve_all(&workloads, 2);
    let mut sequential = Fleet::new(graphs);
    let (results, timings): (_, Vec<ShardTiming>) = sequential.solve_all_timed(&workloads, 1);
    assert_eq!(sharded, results);
    assert_eq!(timings.iter().map(|t| t.sessions).sum::<usize>(), 2);
    let snap: MetricsSnapshot = fleet.metrics_snapshot();
    assert_eq!(snap.sessions, 2);
}

#[test]
fn http_front_end_is_reachable_from_the_prelude() {
    use std::io::{Read, Write};

    let g = Graph::gnp_connected(30, 0.1, &mut SplitMix64::new(41));
    let fleet = Fleet::new([g]);
    let server = HttpServer::start(fleet.into_sessions(), HttpConfig::new().with_workers(1))
        .expect("server starts");
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("loopback");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .expect("request");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("response");
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    let snap = server.metrics_snapshot();
    assert_eq!(snap.http.as_ref().map(|h| h.connections), Some(1));
    server.shutdown();
    // The typed error surface is part of the prelude contract.
    let err: HttpError = HttpError::UnknownRoute;
    assert_eq!(err.status().0, 404);
    let _ = ReplyMode::default();
}

#[test]
fn dynamic_edits_are_reachable_from_the_prelude() {
    // Typed edit batches, graph-level application, decomposition repair and
    // session-level repair all round-trip through the prelude names.
    let g = Graph::gnp_connected(50, 0.08, &mut SplitMix64::new(23));
    let mut batch = EditBatch::with_options(EditOptions::new().with_ignore_redundant(false));
    let (u, v) = g.edges().next().expect("graph has edges");
    batch.remove_edge(u, v).expect("edge present");
    assert_eq!(batch.edits(), [Edit::RemoveEdge(u, v)]);
    let h = g.apply_edits(&batch).expect("valid batch");
    assert_eq!(h.edge_count(), g.edge_count() - 1);
    let dup: Result<Graph, EditError> = h.apply_edits(&batch);
    assert!(dup.is_err(), "removing a removed edge is a typed error");

    let old = locality::core::decomposition::derandomized_decomposition(&g, 4).decomposition;
    let out: RepairOutcome =
        repair_decomposition(&h, &old, &batch, &RepairOptions::new().with_cap(4))
            .expect("repair succeeds");
    assert!(matches!(
        out.path,
        RepairPath::Incremental | RepairPath::FullRebuild
    ));
    out.decomposition
        .validate(&h)
        .expect("valid on edited graph");

    let mut session = Session::new(g.clone());
    session.solve(&Request::mis()).expect("warm");
    let script = random_edit_script(&g, 3, g.node_count(), &mut SplitMix64::new(31));
    let stats: RepairStats = session.apply_edits(script).expect("session repair");
    assert!(stats.edits >= 1);
    session.solve(&Request::mis()).expect("still serves");
}

#[test]
fn typed_verify_errors_flow_through_the_prelude() {
    // The typed checkers keep the old call shapes working...
    let g = Graph::path(3);
    assert!(mis::verify_mis(&g, &[true, false, true]).is_ok());
    let err = mis::verify_mis(&g, &[true, true, false]).unwrap_err();
    // ...while exposing structure and a human-readable Display rendering.
    assert_eq!(err.kind, checkers::VerifyErrorKind::AdjacentInSet);
    assert_eq!(err.node, Some(0));
    assert!(err.to_string().contains("adjacent"));
}

#[test]
fn local_algorithms_are_reachable_from_the_prelude() {
    use locality::core::coloring::{verify_coloring, TrialColoring};
    use locality::core::mis::{verify_mis, LubyMis};

    let g = Graph::grid(5, 5);
    let ids = IdAssignment::sequential(g.node_count());
    let m = LubyMis::default().run(&g, &ids, 1);
    verify_mis(&g, &m.labels).unwrap();
    let c = TrialColoring::default().run(&g, &ids, 1);
    verify_coloring(&g, &c.labels, g.max_degree() + 1).unwrap();
    // Uniform stats come from the same engine metering path.
    assert!(m.stats.meter.messages > 0);
    assert!(c.stats.meter.messages > 0);
}
