//! Integration: decompositions feed the consumers (MIS, coloring); local
//! checkers accept valid outputs and reject mutations.

use locality::core::checkers;
use locality::core::coloring;
use locality::core::decomposition::ball_carving_decomposition;
use locality::core::mis;
use locality::prelude::*;
use locality_graph::generators::Family;

#[test]
fn full_derandomization_chain_mis_and_coloring() {
    let mut p = SplitMix64::new(23);
    for fam in Family::ALL {
        let g = fam.generate(120, &mut p);
        let order: Vec<usize> = (0..g.node_count()).collect();
        let d = ball_carving_decomposition(&g, &order).decomposition;

        let m = mis::via_decomposition(&g, &d);
        assert!(
            checkers::check_mis(&g, &m.in_mis).accepted(),
            "{}",
            fam.name()
        );

        let c = coloring::via_decomposition(&g, &d);
        assert!(
            checkers::check_proper_coloring(&g, &c.colors, g.max_degree() + 1).accepted(),
            "{}",
            fam.name()
        );
        assert_eq!(m.meter.random_bits + c.meter.random_bits, 0);
    }
}

#[test]
fn randomized_consumers_pass_checkers() {
    let mut p = SplitMix64::new(29);
    let g = Graph::gnp_connected(200, 0.02, &mut p);
    let m = mis::luby(&g, &mut PrngSource::seeded(1));
    assert!(checkers::check_mis(&g, &m.in_mis).accepted());
    let c = coloring::random_coloring(&g, &mut PrngSource::seeded(2));
    assert!(checkers::check_proper_coloring(&g, &c.colors, g.max_degree() + 1).accepted());
}

#[test]
fn checker_rejects_any_single_flip_of_a_valid_mis() {
    // Definition 2.2 soundness, brute-forced: flip each node's membership
    // and assert some node rejects.
    let mut p = SplitMix64::new(31);
    let g = Graph::gnp_connected(40, 0.1, &mut p);
    let m = mis::luby(&g, &mut PrngSource::seeded(3));
    assert!(checkers::check_mis(&g, &m.in_mis).accepted());
    for v in g.nodes() {
        let mut mutated = m.in_mis.clone();
        mutated[v] = !mutated[v];
        let out = checkers::check_mis(&g, &mutated);
        assert!(!out.accepted(), "flip at {v} went unnoticed");
        // The rejection is local: some rejecting node is within distance 1.
        let d = bfs_distances(&g, v);
        assert!(
            out.rejecting_nodes()
                .iter()
                .any(|&w| matches!(d[w], Some(x) if x <= 1)),
            "no rejection near {v}"
        );
    }
}

#[test]
fn decomposition_checker_matches_validator() {
    // The local checker (Definition 2.2) and the global validator agree on
    // valid outputs.
    let mut p = SplitMix64::new(37);
    for fam in [Family::Grid, Family::Cycle, Family::GnpSparse] {
        let g = fam.generate(80, &mut p);
        let order: Vec<usize> = (0..g.node_count()).collect();
        let d = ball_carving_decomposition(&g, &order).decomposition;
        let q = d.validate(&g).expect("valid");
        let check = checkers::check_decomposition(&g, &d, q.max_diameter, q.colors);
        assert!(check.accepted(), "{}", fam.name());
        assert_eq!(check.radius, q.max_diameter + 1);
    }
}

#[test]
fn engine_protocols_agree_with_centralized_references() {
    // The EN run is a real message-passing execution; its per-phase outputs
    // were already validated, but also sanity-check the meters: messages and
    // bits flow, and CONGEST stays clean on all families.
    let mut p = SplitMix64::new(41);
    for fam in [Family::Grid, Family::RandomTree] {
        let g = fam.generate(100, &mut p);
        let cfg = ElkinNeimanConfig::for_graph(&g);
        let mut src = PrngSource::seeded(fam as u64);
        let out = elkin_neiman(&g, &cfg, &mut src);
        assert!(out.meter.messages > 0);
        assert!(out.meter.bits_sent > 0);
        assert!(out.meter.congest_clean(), "{}", fam.name());
        assert!(out.meter.max_message_bits <= 8 * g.log2_n() as u64);
    }
}
