//! Offline, API-compatible shim for the `proptest` property-testing
//! framework.
//!
//! The workspace must build without network access, so this crate implements
//! exactly the surface the in-tree property tests use: the [`proptest!`]
//! macro, the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! integer-range and tuple strategies, [`collection::vec`],
//! [`arbitrary::any`], [`test_runner::ProptestConfig`], and the
//! `prop_assert*` macros.
//!
//! Cases are generated from a deterministic per-test RNG (seeded by the test
//! name), so failures are reproducible. There is no shrinking: a failing case
//! panics immediately with the assertion message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test-runner configuration and the deterministic case RNG.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic RNG (SplitMix64) driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed the RNG from a test name, so each property gets a stable
        /// but distinct stream.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as u128) - (self.start as u128);
                    let off = (u128::from(rng.next_u64()) % span) as $t;
                    self.start + off
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and the [`any`] entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical generation recipe.
    pub trait Arbitrary {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length range for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                start: exact,
                end: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generate a `Vec` whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Glob-import of the items property tests actually touch.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property; panics with the condition text (and
/// optional formatted message) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }` is
/// expanded to a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for _ in 0..config.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}
