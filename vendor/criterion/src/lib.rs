//! Offline, API-compatible shim for the `criterion` benchmark harness.
//!
//! The workspace must build without network access, so this crate implements
//! exactly the surface the in-tree benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark body is
//! run a small fixed number of iterations and a rough mean wall-clock time is
//! printed; no statistical analysis is performed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Number of timed iterations per benchmark (the shim's fixed "sample").
const ITERS: u32 = 10;

/// Prevent the optimizer from discarding a value (forwards to [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group, e.g. `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function`-style methods: either a plain name or a
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The display label for the benchmark.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Run `f` repeatedly and record a rough mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let total = start.elapsed();
        let mean_ns = total.as_nanos() / u128::from(self.iters.max(1));
        println!("    {} iters, mean {} ns/iter", self.iters, mean_ns);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench {}/{}", self.name, id.into_label());
        f(&mut Bencher { iters: ITERS });
        self
    }

    /// Benchmark a closure that borrows a setup `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench {}/{}", self.name, id.label);
        f(&mut Bencher { iters: ITERS }, input);
        self
    }

    /// Finish the group (a no-op in the shim).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench {}", id.into_label());
        f(&mut Bencher { iters: ITERS });
        self
    }
}

/// Bundle benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
